/**
 * @file
 * HTML report renderer.
 */

#include "ta/report.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "ta/timeline.h"

namespace cell::ta {

namespace {

std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          default: out += c;
        }
    }
    return out;
}

void
beginTable(std::ostringstream& os, const std::string& caption,
           std::initializer_list<const char*> headers)
{
    os << "<h2>" << escape(caption) << "</h2>\n<table><tr>";
    for (const char* h : headers)
        os << "<th>" << h << "</th>";
    os << "</tr>\n";
}

template <typename... Cells>
void
row(std::ostringstream& os, Cells&&... cells)
{
    os << "<tr>";
    ((os << "<td>" << cells << "</td>"), ...);
    os << "</tr>\n";
}

std::string
fmt(double v, int prec = 1)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

} // namespace

std::string
renderHtmlReport(const Analysis& a, const std::string& title)
{
    const auto& m = a.model;
    std::ostringstream os;
    os << "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>\n"
       << "<title>" << escape(title) << "</title>\n"
       << "<style>\n"
          "body{font-family:sans-serif;margin:24px;max-width:1100px;}\n"
          "table{border-collapse:collapse;margin:8px 0;}\n"
          "th,td{border:1px solid #bbb;padding:3px 10px;"
          "text-align:right;font-size:13px;}\n"
          "th{background:#eee;} td:first-child{text-align:left;}\n"
          "h1{font-size:22px;} h2{font-size:16px;margin-top:24px;}\n"
          ".meta{color:#555;font-size:13px;}\n"
          "</style></head><body>\n"
       << "<h1>" << escape(title) << "</h1>\n"
       << "<p class='meta'>PPE + " << m.numSpes() << " SPEs &middot; span "
       << fmt(m.tbToUs(m.spanTb())) << " &micro;s &middot; "
       << a.stats.total_records << " records &middot; core "
       << m.header().core_hz / 1'000'000 << " MHz &middot; timebase /"
       << m.header().timebase_divider << "</p>\n";

    // Timeline first — the signature view.
    os << "<h2>Timeline</h2>\n"
       << renderSvg(m, a.intervals, TimelineOptions{.width = 950});

    beginTable(os, "SPE time breakdown",
               {"SPE", "run (us)", "compute %", "dma issue %", "dma wait %",
                "mbox wait %", "signal wait %", "utilization"});
    for (const auto& b : a.stats.spu) {
        if (!b.ran)
            continue;
        auto pct = [&](std::uint64_t part) {
            return fmt(b.run_tb ? 100.0 * static_cast<double>(part) /
                                      static_cast<double>(b.run_tb)
                                : 0.0);
        };
        row(os, "SPE" + std::to_string(b.spe), fmt(m.tbToUs(b.run_tb)),
            pct(b.busy_tb()), pct(b.dma_cmd_tb), pct(b.dma_wait_tb),
            pct(b.mbox_wait_tb), pct(b.signal_wait_tb),
            fmt(b.utilization(), 3));
    }
    os << "</table>\n<p class='meta'>load imbalance (max/mean busy): "
       << fmt(a.stats.loadImbalance(), 2) << "</p>\n";

    beginTable(os, "DMA statistics",
               {"SPE", "commands", "bytes", "mean latency (us)",
                "p50 (us)", "max (us)", "overlap score"});
    for (std::uint32_t i = 0; i < a.stats.dma.size(); ++i) {
        const auto& d = a.stats.dma[i];
        if (d.commands == 0)
            continue;
        row(os, "SPE" + std::to_string(i), d.commands, d.bytes,
            fmt(m.tbToUs(static_cast<std::uint64_t>(d.latency_tb.mean())), 2),
            fmt(m.tbToUs(d.latency_tb.quantile(0.5)), 2),
            fmt(m.tbToUs(d.latency_tb.max()), 2),
            fmt(a.stats.overlapScore(i), 2));
    }
    os << "</table>\n";

    beginTable(os, "Event counts (Begin events)", {"operation", "count"});
    for (std::size_t op = 0; op < rt::kNumApiOps; ++op) {
        std::uint64_t total = 0;
        for (const auto& r : a.stats.op_counts)
            total += r[op];
        if (total)
            row(os, rt::apiOpName(static_cast<rt::ApiOp>(op)), total);
    }
    os << "</table>\n";

    beginTable(os, "Tracing self-observation",
               {"SPE", "flushes", "flushed records", "flush wait (cycles)"});
    for (std::uint32_t i = 0; i < a.stats.flush.size(); ++i) {
        const auto& f = a.stats.flush[i];
        if (f.flushes)
            row(os, "SPE" + std::to_string(i), f.flushes,
                f.flushed_records, f.flush_wait_cycles);
    }
    os << "</table>\n</body></html>\n";
    return os.str();
}

void
writeHtmlReport(const std::string& path, const Analysis& a,
                const std::string& title)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        throw std::runtime_error("writeHtmlReport: cannot open " + path);
    os << renderHtmlReport(a, title);
}

} // namespace cell::ta
