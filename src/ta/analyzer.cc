/**
 * @file
 * Analysis pipeline and report printers.
 */

#include "ta/analyzer.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "trace/reader.h"

namespace cell::ta {

Analysis
analyze(const trace::TraceData& trace, bool lenient)
{
    Analysis a{TraceModel::build(trace, lenient), {}, {}};
    a.intervals = IntervalSet::build(a.model);
    a.stats = TraceStats::build(a.model, a.intervals);
    return a;
}

Analysis
analyzeFile(const std::string& path)
{
    return analyze(trace::readFile(path));
}

Analysis
analyzeFileSalvage(const std::string& path, trace::ReadReport& report)
{
    return analyze(trace::readFileSalvage(path, report), /*lenient=*/true);
}

namespace {

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

} // namespace

void
printSummary(std::ostream& os, const Analysis& a)
{
    const auto& m = a.model;
    os << "=== Trace summary ===\n"
       << "cores: PPE + " << m.numSpes() << " SPEs, span "
       << std::fixed << std::setprecision(1) << m.tbToUs(m.spanTb())
       << " us (" << m.spanTb() << " timebase ticks)\n"
       << "records: " << a.stats.total_records << " total\n";
    if (a.stats.anyLoss()) {
        std::uint64_t dropped = 0;
        for (const CoreLoss& l : a.stats.loss)
            dropped += l.dropped_events;
        os << "WARNING: incomplete trace — " << dropped
           << " events dropped during tracing (see event-loss report)\n";
    }
    for (const auto& tl : m.cores()) {
        os << "  " << std::left << std::setw(20) << tl.label << std::right
           << " " << std::setw(8) << tl.events.size() << " records";
        if (tl.core > 0) {
            const auto& b = a.stats.spu[tl.core - 1];
            if (b.ran) {
                os << ", run " << std::setprecision(1) << std::setw(9)
                   << m.tbToUs(b.run_tb) << " us, util "
                   << std::setprecision(1) << 100.0 * b.utilization() << "%";
            } else {
                os << ", idle";
            }
        }
        os << "\n";
    }
}

void
printStallBreakdown(std::ostream& os, const Analysis& a)
{
    const auto& m = a.model;
    os << "=== SPE time breakdown ===\n"
       << "SPE     run(us)  compute%  dmaissue%  dmawait%  mboxwait%  sigwait%\n";
    for (const auto& b : a.stats.spu) {
        if (!b.ran)
            continue;
        os << std::left << std::setw(6) << ("SPE" + std::to_string(b.spe))
           << std::right << std::fixed << std::setprecision(1)
           << std::setw(10) << m.tbToUs(b.run_tb)
           << std::setw(9) << pct(b.busy_tb(), b.run_tb)
           << std::setw(11) << pct(b.dma_cmd_tb, b.run_tb)
           << std::setw(10) << pct(b.dma_wait_tb, b.run_tb)
           << std::setw(11) << pct(b.mbox_wait_tb, b.run_tb)
           << std::setw(10) << pct(b.signal_wait_tb, b.run_tb) << "\n";
    }
    os << "load imbalance (max/mean busy): " << std::setprecision(2)
       << a.stats.loadImbalance() << "\n";
}

void
printDmaReport(std::ostream& os, const Analysis& a)
{
    const auto& m = a.model;
    os << "=== DMA report ===\n"
       << "SPE     cmds     bytes   lat_mean(us)  lat_p50  lat_max  overlap\n";
    for (std::uint32_t i = 0; i < a.stats.dma.size(); ++i) {
        const auto& d = a.stats.dma[i];
        if (d.commands == 0)
            continue;
        os << std::left << std::setw(6) << ("SPE" + std::to_string(i))
           << std::right << std::setw(6) << d.commands << std::setw(10)
           << d.bytes << std::fixed << std::setprecision(2) << std::setw(14)
           << m.tbToUs(static_cast<std::uint64_t>(d.latency_tb.mean()))
           << std::setw(9) << m.tbToUs(d.latency_tb.quantile(0.5))
           << std::setw(9) << m.tbToUs(d.latency_tb.max()) << std::setw(9)
           << a.stats.overlapScore(i) << "\n";
    }
}

void
printDmaHistogram(std::ostream& os, const Analysis& a)
{
    // Merge the per-SPE power-of-two bucket counts.
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
    for (const DmaStats& d : a.stats.dma) {
        const auto& b = d.latency_tb.buckets();
        if (buckets.size() < b.size())
            buckets.resize(b.size(), 0);
        for (std::size_t i = 0; i < b.size(); ++i)
            buckets[i] += b[i];
        total += d.latency_tb.count();
    }
    os << "=== DMA latency histogram (" << total << " transfers) ===\n";
    if (total == 0)
        return;
    std::uint64_t peak = 0;
    for (auto c : buckets)
        peak = std::max(peak, c);
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        const double lo_us = a.model.tbToUs(Histogram::bucketLo(i));
        const auto bar = static_cast<std::size_t>(
            50.0 * static_cast<double>(buckets[i]) /
            static_cast<double>(peak));
        os << std::fixed << std::setprecision(2) << std::setw(9) << lo_us
           << " us |" << std::string(std::max<std::size_t>(bar, 1), '#')
           << " " << buckets[i] << "\n";
    }
}

void
printEventCounts(std::ostream& os, const Analysis& a)
{
    os << "=== Event counts (Begin events) ===\n";
    for (std::size_t op = 0; op < rt::kNumApiOps; ++op) {
        std::uint64_t total = 0;
        for (const auto& row : a.stats.op_counts)
            total += row[op];
        if (total == 0)
            continue;
        os << "  " << std::left << std::setw(22)
           << rt::apiOpName(static_cast<rt::ApiOp>(op)) << std::right
           << std::setw(10) << total << "\n";
    }
}

void
printTracingReport(std::ostream& os, const Analysis& a)
{
    os << "=== Tracing self-observation ===\n"
       << "SPE     flushes  flushed_recs  flush_wait_cycles\n";
    for (std::uint32_t i = 0; i < a.stats.flush.size(); ++i) {
        const auto& f = a.stats.flush[i];
        if (f.flushes == 0)
            continue;
        os << std::left << std::setw(6) << ("SPE" + std::to_string(i))
           << std::right << std::setw(9) << f.flushes << std::setw(14)
           << f.flushed_records << std::setw(19) << f.flush_wait_cycles
           << "\n";
    }
}

void
printLossReport(std::ostream& os, const Analysis& a)
{
    os << "=== Event loss ===\n";
    if (!a.stats.anyLoss() && a.model.leniencySkipped() == 0) {
        os << "no event loss: every emitted event is in the trace\n";
        return;
    }
    os << "core    recorded   dropped  markers  gap_intervals   loss%\n";
    for (std::size_t c = 0; c < a.stats.loss.size(); ++c) {
        const CoreLoss& l = a.stats.loss[c];
        if (l.recorded_events == 0 && l.dropped_events == 0)
            continue;
        const std::string label =
            c == 0 ? "PPE" : "SPE" + std::to_string(c - 1);
        os << std::left << std::setw(6) << label << std::right
           << std::setw(10) << l.recorded_events << std::setw(10)
           << l.dropped_events << std::setw(9) << l.drop_markers
           << std::setw(15) << l.gap_intervals << std::fixed
           << std::setprecision(2) << std::setw(8) << l.lossPct() << "\n";
    }
    if (a.model.leniencySkipped() > 0) {
        os << "salvage: " << a.model.leniencySkipped()
           << " records unusable (sync lost), excluded from timelines\n";
    }
    os << "durations of gap-spanning intervals include unobserved "
          "activity; treat them as lower-quality samples\n";
}

void
exportBreakdownCsv(std::ostream& os, const Analysis& a)
{
    os << "spe,run_us,compute_us,dma_issue_us,dma_wait_us,mbox_wait_us,"
          "signal_wait_us,utilization,overlap\n";
    const auto& m = a.model;
    for (const auto& b : a.stats.spu) {
        if (!b.ran)
            continue;
        os << b.spe << ',' << m.tbToUs(b.run_tb) << ','
           << m.tbToUs(b.busy_tb()) << ',' << m.tbToUs(b.dma_cmd_tb) << ','
           << m.tbToUs(b.dma_wait_tb) << ',' << m.tbToUs(b.mbox_wait_tb)
           << ',' << m.tbToUs(b.signal_wait_tb) << ',' << b.utilization()
           << ',' << a.stats.overlapScore(b.spe) << "\n";
    }
}

void
exportDmaTransfersCsv(std::ostream& os, const Analysis& a)
{
    os << "spe,op,ls,ea,size,tag,issue_us,latency_us,observed\n";
    const auto& m = a.model;
    for (std::uint32_t s = 0; s < a.stats.dma.size(); ++s) {
        for (const DmaTransfer& t : matchDmaTransfers(a.intervals, s)) {
            os << s << ',' << rt::apiOpName(t.op) << ",0x" << std::hex
               << t.ls << ",0x" << t.ea << std::dec << ',' << t.size << ','
               << t.tag << ',' << m.tbToUs(t.issue_tb - m.startTb()) << ','
               << m.tbToUs(t.latency_tb()) << ','
               << (t.observed ? 1 : 0) << "\n";
        }
    }
}

std::string
fullReport(const Analysis& a)
{
    std::ostringstream os;
    printSummary(os, a);
    printStallBreakdown(os, a);
    printDmaReport(os, a);
    printDmaHistogram(os, a);
    printEventCounts(os, a);
    printTracingReport(os, a);
    printLossReport(os, a);
    exportBreakdownCsv(os, a);
    exportIntervalsCsv(os, a);
    exportDmaTransfersCsv(os, a);
    return os.str();
}

std::uint64_t
fnv1a64(const std::string& data)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char ch : data) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
exportIntervalsCsv(std::ostream& os, const Analysis& a)
{
    os << "core,class,op,start_us,duration_us\n";
    const auto& m = a.model;
    for (const auto& per_core : a.intervals.per_core) {
        for (const Interval& iv : per_core) {
            os << iv.core << ',' << intervalClassName(iv.cls) << ','
               << rt::apiOpName(iv.op) << ','
               << m.tbToUs(iv.start_tb - m.startTb()) << ','
               << m.tbToUs(iv.duration()) << "\n";
        }
    }
}

} // namespace cell::ta
