/**
 * @file
 * Activity-profile computation and rendering.
 */

#include "ta/profile.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "ta/analyzer.h"

namespace cell::ta {

namespace {

/** Add interval [s,e) overlap into per-bucket accumulators. */
void
accumulate(std::vector<double>& row, std::uint64_t start_tb,
           std::uint64_t bucket_tb, std::uint64_t s, std::uint64_t e)
{
    if (e <= s || bucket_tb == 0)
        return;
    const std::uint64_t n = row.size();
    std::uint64_t b0 = (s - start_tb) / bucket_tb;
    std::uint64_t b1 = (e - 1 - start_tb) / bucket_tb;
    b0 = std::min<std::uint64_t>(b0, n - 1);
    b1 = std::min<std::uint64_t>(b1, n - 1);
    for (std::uint64_t b = b0; b <= b1; ++b) {
        const std::uint64_t lo =
            std::max(s, start_tb + b * bucket_tb);
        const std::uint64_t hi =
            std::min(e, start_tb + (b + 1) * bucket_tb);
        if (hi > lo)
            row[b] += static_cast<double>(hi - lo) /
                      static_cast<double>(bucket_tb);
    }
}

bool
isStallClass(IntervalClass c)
{
    return c == IntervalClass::DmaWait || c == IntervalClass::MailboxWait ||
           c == IntervalClass::SignalWait;
}

} // namespace

ActivityProfile
ActivityProfile::build(const TraceModel& model, const IntervalSet& ivs,
                       std::uint32_t buckets)
{
    ActivityProfile p;
    p.buckets = std::max(buckets, 1u);
    p.start_tb = model.startTb();
    const std::uint64_t span = std::max<std::uint64_t>(model.spanTb(), 1);
    p.bucket_tb = (span + p.buckets - 1) / p.buckets;
    if (p.bucket_tb == 0)
        p.bucket_tb = 1;

    const std::size_t n_cores = model.cores().size();
    p.running.assign(n_cores, std::vector<double>(p.buckets, 0.0));
    p.stalled.assign(n_cores, std::vector<double>(p.buckets, 0.0));

    for (std::size_t core = 0; core < n_cores; ++core) {
        for (const Interval& iv : ivs.per_core[core]) {
            if (iv.cls == IntervalClass::Run) {
                accumulate(p.running[core], p.start_tb, p.bucket_tb,
                           iv.start_tb, iv.end_tb);
            } else if (isStallClass(iv.cls)) {
                accumulate(p.stalled[core], p.start_tb, p.bucket_tb,
                           iv.start_tb, iv.end_tb);
            } else if (core == 0 && iv.cls == IntervalClass::PpeCall) {
                // The PPE has no Run interval; treat runtime calls as
                // its "running" signal.
                accumulate(p.running[core], p.start_tb, p.bucket_tb,
                           iv.start_tb, iv.end_tb);
            }
        }
        // Clamp accumulation noise.
        for (std::uint32_t b = 0; b < p.buckets; ++b) {
            p.running[core][b] = std::min(p.running[core][b], 1.0);
            p.stalled[core][b] = std::min(p.stalled[core][b], 1.0);
        }
    }
    return p;
}

void
printActivity(std::ostream& os, const Analysis& a, std::uint32_t buckets)
{
    const ActivityProfile p =
        ActivityProfile::build(a.model, a.intervals, buckets);
    os << "=== Activity profile (" << p.buckets << " buckets, "
       << std::fixed << std::setprecision(1)
       << a.model.tbToUs(p.bucket_tb) << " us each) ===\n";

    std::size_t gutter = 4;
    for (const auto& tl : a.model.cores())
        gutter = std::max(gutter, tl.label.size());

    for (const auto& tl : a.model.cores()) {
        os << tl.label << std::string(gutter - tl.label.size(), ' ')
           << " |";
        for (std::uint32_t b = 0; b < p.buckets; ++b) {
            const double run = p.running[tl.core][b];
            const double stall = p.stalled[tl.core][b];
            char c = ' ';
            if (run > 0.02) {
                if (stall > run * 0.5) {
                    c = 'x'; // mostly waiting
                } else {
                    const double busy = p.busyFrac(tl.core, b);
                    c = busy < 0.2   ? '.'
                        : busy < 0.4 ? ':'
                        : busy < 0.6 ? '-'
                        : busy < 0.8 ? '='
                                     : '#';
                }
            }
            os << c;
        }
        os << "|\n";
    }
    os << "  legend: # >=80% busy  = 60-80  - 40-60  : 20-40  . <20"
          "  x mostly stalled  ' ' idle\n";
}

void
exportActivityCsv(std::ostream& os, const Analysis& a,
                  std::uint32_t buckets)
{
    const ActivityProfile p =
        ActivityProfile::build(a.model, a.intervals, buckets);
    os << "core,bucket,start_us,running,stalled,busy\n";
    for (std::size_t core = 0; core < p.running.size(); ++core) {
        for (std::uint32_t b = 0; b < p.buckets; ++b) {
            os << core << ',' << b << ','
               << a.model.tbToUs(b * p.bucket_tb) << ','
               << p.running[core][b] << ',' << p.stalled[core][b] << ','
               << p.busyFrac(static_cast<std::uint16_t>(core), b) << "\n";
        }
    }
}

} // namespace cell::ta
