/**
 * @file
 * Windowed trace queries: analyze only the part of a trace that
 * intersects a [from, to) timebase window, seeking via the optional v2
 * footer index instead of scanning the whole file.
 *
 * Semantics are defined by the brute-force reference, queryWindow():
 * take the FULL serial analysis and keep the events whose time lies in
 * [from, to) and the intervals whose START lies in [from, to) — with
 * their full durations, even when the End falls past `to`. The indexed
 * path, queryWindowFile(), must reproduce that exactly (field-wise
 * equal structures, byte-identical windowReport() text); the
 * differential suite tests/ta/test_query_diff.cc enforces it on every
 * workload, fault-injected, and salvaged trace at 1/2/4/8 threads.
 *
 * How the indexed path gets exact answers without a full scan: per
 * core it resumes the analyzer's replay at the latest index entry
 * whose `tick` (max event time before the entry) is strictly below
 * `from` — every skipped event is provably before the window — with
 * the entry's snapshot of the clock mapping, drop epoch, monotonic
 * clamp, and open-begin mask. Pre-window Begins whose End falls inside
 * the window appear in the mask as "phantom" pendings: their End is
 * consumed silently (the interval started before the window), so the
 * matcher never misclassifies it as an End-without-Begin. Replay stops
 * early once the clock passes `to` and no real pending interval
 * started inside the window.
 *
 * Fallbacks keep every answer exact: no index, a checksum/structural
 * mismatch, salvage mode (salvage shifts byte offsets), a trace whose
 * strict analysis would throw (the index records pre-sync/bad-core
 * skips), or force_full_scan all route through the full (parallel)
 * scan plus the brute-force filter.
 *
 * Record blocks decoded from the file are cached in a bounded,
 * thread-safe LRU keyed by (file identity, block range), shared across
 * queries by default.
 */

#ifndef CELL_TA_QUERY_H
#define CELL_TA_QUERY_H

#include <array>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ta/analyzer.h"
#include "ta/cancel.h"
#include "trace/index.h"

namespace cell::ta {

/**
 * Bounded LRU over decoded record blocks, keyed by (file identity,
 * block index). Thread-safe; concurrent misses on the same key may
 * both load, last insert wins (harmless: blocks are immutable).
 */
class BlockCache
{
  public:
    /** Records per cached block (128 KiB of record bytes). */
    static constexpr std::uint64_t kBlockRecords = 4096;

    using Block = std::shared_ptr<const std::vector<trace::Record>>;

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    explicit BlockCache(std::size_t capacity_bytes = 64u << 20);

    /** Fetch block @p block of @p file_id, calling @p load on a miss. */
    Block get(const std::string& file_id, std::uint64_t block,
              const std::function<std::vector<trace::Record>()>& load);

    /** Identity key for @p path: path + size + mtime + a content
     *  fingerprint (FNV-1a over the first and last 4 KiB), so an
     *  overwritten file never serves stale blocks — even an in-place
     *  rewrite of the same size landing within the mtime granularity,
     *  which (path,size,mtime) alone cannot see. */
    static std::string fileId(const std::string& path);

    Stats stats() const;
    std::size_t sizeBytes() const;
    void clear();

  private:
    struct Entry
    {
        std::string key;
        Block block;
    };

    mutable std::mutex mu_;
    std::size_t capacity_;
    std::size_t bytes_ = 0;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> map_;
    Stats stats_;
};

/** The process-wide cache queryWindowFile uses by default. */
BlockCache& sharedBlockCache();

/** Knobs for queryWindowFile. */
struct QueryOptions
{
    /** Analysis threads; 0 = hardware concurrency, 1 = serial. */
    unsigned threads = 0;
    /** Salvage-read the file (lenient analysis, never indexed). */
    bool salvage = false;
    /** Ignore any index; take the full-scan path (benchmarks, and the
     *  degradation tests that pin fallback == indexed). */
    bool force_full_scan = false;
    /** Restrict to one core id (0 = PPE, 1 + i = SPE i); -1 = all. */
    int core = -1;
    /** Block cache to use; nullptr = sharedBlockCache(). */
    BlockCache* cache = nullptr;
    /** Optional cooperative cancellation, polled at block boundaries
     *  on the indexed path and at shard boundaries on the full-scan
     *  fallbacks; a tripped token aborts with DeadlineExceeded. */
    const CancelToken* cancel = nullptr;
    /** When salvage-reading, receives what the salvage reader had to
     *  skip (the serve layer surfaces it as a loss warning). */
    trace::ReadReport* salvage_report = nullptr;
};

/** One windowed query's result. */
struct WindowResult
{
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    trace::Header header;
    /** Per-core timelines holding only events with time in [from, to). */
    std::vector<CoreTimeline> cores;
    /** Per-core intervals whose start lies in [from, to), full
     *  durations, sorted by start time. */
    std::vector<std::vector<Interval>> intervals;
    std::uint64_t leniency_skipped = 0;

    // Diagnostics — deliberately NOT part of windowReport(), so the
    // indexed and full-scan paths stay byte-comparable.
    bool used_index = false;
    std::uint64_t records_scanned = 0;
};

/** Brute-force reference: filter a full analysis down to the window. */
WindowResult queryWindow(const Analysis& a, std::uint64_t from,
                         std::uint64_t to, int core = -1);

/** Windowed query over a trace file, seeking via the v2 index when
 *  one is present and trustworthy (see file docs for the fallbacks).
 *  @throws std::runtime_error exactly where the equivalent full-scan
 *  analysis would (damaged file, strict-analysis failures). */
WindowResult queryWindowFile(const std::string& path, std::uint64_t from,
                             std::uint64_t to,
                             const QueryOptions& opt = {});

/** Deterministic textual report: per-core counts, then every event
 *  and interval row in absolute timebase ticks. The byte-compare
 *  artifact of the query differential suite. */
std::string windowReport(const WindowResult& r);

/** Assemble a full Analysis (model, intervals, stats) from a window —
 *  lets every existing view (activity profile, breakdowns) run on a
 *  window slice, e.g. `ta profile --from --to`. */
Analysis windowAnalysis(const WindowResult& r);

/**
 * Per-window, per-core signature for the rolling divergence scan
 * (`ta diff`). A window's signature is sensitive to every way a run
 * can differ inside it: the event count, the sum of event offsets from
 * the window start (so a pure time shift registers even when counts
 * and occupancy match), and the per-class interval occupancy clipped
 * to the window. Two runs are identical inside a window iff their
 * signatures match core-for-core.
 */
struct WindowSignature
{
    std::uint64_t events = 0;
    /** Σ (event time - window start) over in-window events. */
    std::uint64_t time_sum = 0;
    /** Interval time overlapping this window, per IntervalClass. */
    std::array<std::uint64_t, kNumIntervalClasses> occupancy{};

    bool operator==(const WindowSignature&) const = default;
};

/**
 * Signatures for @p count consecutive windows of @p width ticks
 * starting at @p origin, indexed [window][core]. Windows use the same
 * convention as queryWindow: an event belongs to the window containing
 * its time; interval occupancy is clipped to each window it overlaps.
 * @p width must be nonzero.
 */
std::vector<std::vector<WindowSignature>>
windowSignatures(const Analysis& a, std::uint64_t origin,
                 std::uint64_t width, std::uint64_t count);

} // namespace cell::ta

#endif // CELL_TA_QUERY_H
