/**
 * @file
 * ASCII and SVG timeline renderers.
 */

#include "ta/timeline.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cell::ta {

namespace {

/** Paint priority: higher wins when intervals overlap a cell. */
int
classPriority(IntervalClass c)
{
    switch (c) {
      case IntervalClass::Run: return 1;
      case IntervalClass::DmaCommand: return 2;
      case IntervalClass::PpeCall: return 2;
      case IntervalClass::DmaWait: return 3;
      case IntervalClass::MailboxWait: return 4;
      case IntervalClass::SignalWait: return 5;
      case IntervalClass::Other: return 0;
    }
    return 0;
}

char
classChar(IntervalClass c)
{
    switch (c) {
      case IntervalClass::Run: return '#';
      case IntervalClass::DmaCommand: return 'd';
      case IntervalClass::DmaWait: return 'D';
      case IntervalClass::MailboxWait: return 'M';
      case IntervalClass::SignalWait: return 'S';
      case IntervalClass::PpeCall: return 'P';
      case IntervalClass::Other: return '.';
    }
    return '.';
}

const char*
classColor(IntervalClass c)
{
    switch (c) {
      case IntervalClass::Run: return "#4caf50";         // green: computing
      case IntervalClass::DmaCommand: return "#2196f3";  // blue: issuing
      case IntervalClass::DmaWait: return "#f44336";     // red: DMA wait
      case IntervalClass::MailboxWait: return "#ff9800"; // orange
      case IntervalClass::SignalWait: return "#9c27b0";  // purple
      case IntervalClass::PpeCall: return "#607d8b";     // slate
      case IntervalClass::Other: return "#bdbdbd";
    }
    return "#bdbdbd";
}

struct Window
{
    std::uint64_t start;
    std::uint64_t span;
};

Window
resolveWindow(const TraceModel& model, const TimelineOptions& opt)
{
    std::uint64_t start = opt.start_tb;
    std::uint64_t end = opt.end_tb;
    if (start == 0 && end == 0) {
        start = model.startTb();
        end = model.endTb();
    }
    if (end <= start)
        end = start + 1;
    return Window{start, end - start};
}

} // namespace

std::string
renderAscii(const TraceModel& model, const IntervalSet& ivs,
            const TimelineOptions& opt)
{
    if (opt.width == 0)
        throw std::invalid_argument("renderAscii: zero width");
    const Window win = resolveWindow(model, opt);
    std::ostringstream out;

    // Label gutter width.
    std::size_t gutter = 4;
    for (const auto& tl : model.cores())
        gutter = std::max(gutter, tl.label.size());

    out << std::string(gutter, ' ') << " |" << "0"
        << std::string(opt.width > 12 ? opt.width - 12 : 0, ' ')
        << static_cast<std::uint64_t>(model.tbToUs(win.span)) << " us\n";

    for (const auto& tl : model.cores()) {
        if (tl.core == 0 && !opt.show_ppe)
            continue;
        std::string row(opt.width, '.');
        std::vector<int> prio(opt.width, -1);

        for (const Interval& iv : ivs.per_core[tl.core]) {
            if (iv.end_tb < win.start || iv.start_tb > win.start + win.span)
                continue;
            const std::uint64_t s =
                std::max(iv.start_tb, win.start) - win.start;
            const std::uint64_t e =
                std::min(iv.end_tb, win.start + win.span) - win.start;
            auto c0 = static_cast<std::size_t>(
                static_cast<double>(s) / win.span * opt.width);
            auto c1 = static_cast<std::size_t>(
                static_cast<double>(e) / win.span * opt.width);
            c0 = std::min<std::size_t>(c0, opt.width - 1);
            c1 = std::min<std::size_t>(std::max(c1, c0 + 1), opt.width);
            const int p = classPriority(iv.cls);
            for (std::size_t x = c0; x < c1; ++x) {
                if (p > prio[x]) {
                    prio[x] = p;
                    row[x] = classChar(iv.cls);
                }
            }
        }
        out << tl.label << std::string(gutter - tl.label.size(), ' ')
            << " |" << row << "|\n";
    }
    out << "  legend: # compute  d dma-issue  D dma-wait  M mbox-wait"
           "  S signal-wait  P ppe-call  . idle\n";
    return out.str();
}

std::string
renderSvg(const TraceModel& model, const IntervalSet& ivs,
          const TimelineOptions& opt)
{
    const Window win = resolveWindow(model, opt);
    const unsigned label_w = 140;
    const unsigned width = std::max(opt.width, 200u);
    const unsigned rows =
        static_cast<unsigned>(model.cores().size()) - (opt.show_ppe ? 0 : 1);
    const unsigned height = rows * opt.row_height + 60;

    std::ostringstream svg;
    svg << "<svg xmlns='http://www.w3.org/2000/svg' width='"
        << label_w + width + 20 << "' height='" << height << "'>\n"
        << "<style>text{font-family:monospace;font-size:11px;}</style>\n"
        << "<rect width='100%' height='100%' fill='white'/>\n";

    unsigned row = 0;
    for (const auto& tl : model.cores()) {
        if (tl.core == 0 && !opt.show_ppe)
            continue;
        const unsigned y = 20 + row * opt.row_height;
        svg << "<text x='4' y='" << y + opt.row_height / 2 + 4 << "'>"
            << tl.label << "</text>\n";
        svg << "<rect x='" << label_w << "' y='" << y << "' width='" << width
            << "' height='" << opt.row_height - 4
            << "' fill='#eeeeee' stroke='#999'/>\n";

        // Paint in priority order so waits overlay the run bar.
        std::vector<const Interval*> sorted;
        for (const Interval& iv : ivs.per_core[tl.core])
            sorted.push_back(&iv);
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const Interval* a, const Interval* b) {
                             return classPriority(a->cls) <
                                    classPriority(b->cls);
                         });
        for (const Interval* iv : sorted) {
            if (iv->end_tb < win.start ||
                iv->start_tb > win.start + win.span)
                continue;
            const std::uint64_t s =
                std::max(iv->start_tb, win.start) - win.start;
            const std::uint64_t e =
                std::min(iv->end_tb, win.start + win.span) - win.start;
            const double x0 = static_cast<double>(s) / win.span * width;
            double x1 = static_cast<double>(e) / win.span * width;
            if (x1 - x0 < 0.5)
                x1 = x0 + 0.5;
            svg << "<rect x='" << label_w + x0 << "' y='" << y << "' width='"
                << x1 - x0 << "' height='" << opt.row_height - 4 << "' fill='"
                << classColor(iv->cls) << "'><title>"
                << intervalClassName(iv->cls) << " "
                << rt::apiOpName(iv->op) << " "
                << model.tbToUs(iv->duration()) << "us</title></rect>\n";
        }
        ++row;
    }

    // Time axis and legend.
    const unsigned axis_y = 20 + rows * opt.row_height + 14;
    svg << "<text x='" << label_w << "' y='" << axis_y << "'>0</text>\n"
        << "<text x='" << label_w + width - 60 << "' y='" << axis_y << "'>"
        << model.tbToUs(win.span) << " us</text>\n";
    static const IntervalClass legend[] = {
        IntervalClass::Run, IntervalClass::DmaCommand, IntervalClass::DmaWait,
        IntervalClass::MailboxWait, IntervalClass::SignalWait,
        IntervalClass::PpeCall};
    unsigned lx = label_w;
    for (IntervalClass c : legend) {
        svg << "<rect x='" << lx << "' y='" << axis_y + 8
            << "' width='10' height='10' fill='" << classColor(c) << "'/>"
            << "<text x='" << lx + 14 << "' y='" << axis_y + 17 << "'>"
            << intervalClassName(c) << "</text>\n";
        lx += 110;
    }
    svg << "</svg>\n";
    return svg.str();
}

void
writeSvg(const std::string& path, const TraceModel& model,
         const IntervalSet& ivs, const TimelineOptions& opt)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        throw std::runtime_error("writeSvg: cannot open " + path);
    os << renderSvg(model, ivs, opt);
}

} // namespace cell::ta
