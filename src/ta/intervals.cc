/**
 * @file
 * Interval matcher implementation.
 */

#include "ta/intervals.h"

#include <algorithm>
#include <array>
#include <optional>

namespace cell::ta {

using rt::ApiOp;

const char*
intervalClassName(IntervalClass c)
{
    switch (c) {
      case IntervalClass::Run: return "RUN";
      case IntervalClass::DmaCommand: return "DMA_CMD";
      case IntervalClass::DmaWait: return "DMA_WAIT";
      case IntervalClass::MailboxWait: return "MBOX_WAIT";
      case IntervalClass::SignalWait: return "SIGNAL_WAIT";
      case IntervalClass::PpeCall: return "PPE_CALL";
      case IntervalClass::Other: return "OTHER";
    }
    return "?";
}

IntervalClass
classifyOp(ApiOp op)
{
    switch (op) {
      case ApiOp::SpuMfcGet:
      case ApiOp::SpuMfcGetFence:
      case ApiOp::SpuMfcGetBarrier:
      case ApiOp::SpuMfcPut:
      case ApiOp::SpuMfcPutFence:
      case ApiOp::SpuMfcPutBarrier:
      case ApiOp::SpuMfcGetList:
      case ApiOp::SpuMfcPutList:
        return IntervalClass::DmaCommand;
      case ApiOp::SpuTagWaitAny:
      case ApiOp::SpuTagWaitAll:
        return IntervalClass::DmaWait;
      case ApiOp::SpuMboxRead:
      case ApiOp::SpuMboxWrite:
      case ApiOp::SpuMboxIrqWrite:
        return IntervalClass::MailboxWait;
      case ApiOp::SpuSignalRead1:
      case ApiOp::SpuSignalRead2:
        return IntervalClass::SignalWait;
      case ApiOp::PpeContextCreate:
      case ApiOp::PpeContextRun:
      case ApiOp::PpeContextJoin:
      case ApiOp::PpeMboxWrite:
      case ApiOp::PpeMboxRead:
      case ApiOp::PpeMboxIrqRead:
      case ApiOp::PpeSignalPost:
      case ApiOp::PpeProxyGet:
      case ApiOp::PpeProxyPut:
      case ApiOp::PpeProxyTagWait:
        return IntervalClass::PpeCall;
      default:
        return IntervalClass::Other;
    }
}

std::vector<Interval>
buildCoreIntervals(const CoreTimeline& tl)
{
    std::vector<Interval> dst;
    {
        // One pending Begin per op (runtime calls are sequential per
        // core); plus the run interval from SpuStart.
        std::array<std::optional<Event>, rt::kNumApiOps> pending;
        Event run_start_ev{};
        bool have_run_start = false;
        // Epoch of the newest event seen (tool records included) —
        // dangling intervals closed at trace end compare against it.
        std::uint32_t final_epoch = 0;

        for (const Event& ev : tl.events) {
            final_epoch = ev.epoch;
            if (ev.isToolRecord() || !ev.isKnownOp())
                continue;
            const ApiOp op = ev.op();

            if (op == ApiOp::SpuStart) {
                run_start_ev = ev;
                have_run_start = true;
                continue;
            }
            if (op == ApiOp::SpuStop) {
                Interval run;
                run.cls = IntervalClass::Run;
                run.op = ApiOp::SpuStart;
                run.core = tl.core;
                run.start_tb = have_run_start ? run_start_ev.time_tb
                                              : ev.time_tb;
                run.end_tb = ev.time_tb;
                run.a = ev.a; // exit code
                run.truncated = !have_run_start;
                run.gap = have_run_start && run_start_ev.epoch != ev.epoch;
                dst.push_back(run);
                have_run_start = false;
                continue;
            }

            const auto idx = static_cast<std::size_t>(op);
            if (ev.isBegin()) {
                // Single-marker events (user events, decrementer ops)
                // have no End; emit a zero-length interval directly.
                const auto cls = classifyOp(op);
                if (cls == IntervalClass::Other) {
                    Interval i;
                    i.cls = cls;
                    i.op = op;
                    i.core = tl.core;
                    i.start_tb = i.end_tb = ev.time_tb;
                    i.a = ev.a;
                    i.b = ev.b;
                    i.c = ev.c;
                    i.d = ev.d;
                    dst.push_back(i);
                } else {
                    pending[idx] = ev;
                }
            } else {
                Interval i;
                i.cls = classifyOp(op);
                i.op = op;
                i.core = tl.core;
                if (pending[idx]) {
                    const Event& b = *pending[idx];
                    i.start_tb = b.time_tb;
                    i.a = b.a;
                    i.b = b.b;
                    i.c = b.c;
                    i.d = b.d;
                    i.gap = b.epoch != ev.epoch;
                    pending[idx].reset();
                } else {
                    // End without Begin (Begin filtered out?): degrade
                    // to a zero-length interval at the End time.
                    i.start_tb = ev.time_tb;
                    i.truncated = true;
                }
                i.end_tb = ev.time_tb;
                i.end_b = ev.b;
                dst.push_back(i);
            }
        }

        // Close dangling intervals at the trace end.
        const std::uint64_t end = tl.empty() ? 0 : tl.lastTime();
        for (auto& p : pending) {
            if (!p)
                continue;
            Interval i;
            i.cls = classifyOp(p->op());
            i.op = p->op();
            i.core = tl.core;
            i.start_tb = p->time_tb;
            i.end_tb = end;
            i.a = p->a;
            i.b = p->b;
            i.c = p->c;
            i.d = p->d;
            i.truncated = true;
            i.gap = p->epoch != final_epoch;
            dst.push_back(i);
        }
        if (have_run_start) {
            Interval run;
            run.cls = IntervalClass::Run;
            run.op = ApiOp::SpuStart;
            run.core = tl.core;
            run.start_tb = run_start_ev.time_tb;
            run.end_tb = end;
            run.truncated = true;
            run.gap = run_start_ev.epoch != final_epoch;
            dst.push_back(run);
        }

        std::stable_sort(dst.begin(), dst.end(),
                         [](const Interval& x, const Interval& y) {
                             return x.start_tb < y.start_tb;
                         });
    }
    return dst;
}

std::uint64_t
pendableOpsMask()
{
    static const std::uint64_t mask = [] {
        std::uint64_t m = 0;
        for (std::size_t k = 0; k < rt::kNumApiOps && k < 64; ++k) {
            const auto op = static_cast<ApiOp>(k);
            if (op == ApiOp::SpuStart || op == ApiOp::SpuStop)
                continue;
            if (classifyOp(op) != IntervalClass::Other)
                m |= std::uint64_t{1} << k;
        }
        return m;
    }();
    return mask;
}

trace::OpSemantics
surgeryOpSemantics()
{
    trace::OpSemantics sem;
    sem.pendable_mask = pendableOpsMask();
    sem.spu_start = static_cast<std::uint8_t>(ApiOp::SpuStart);
    sem.spu_stop = static_cast<std::uint8_t>(ApiOp::SpuStop);
    sem.num_known_ops = static_cast<std::uint8_t>(rt::kNumApiOps);
    return sem;
}

IntervalSet
IntervalSet::build(const TraceModel& model)
{
    IntervalSet out;
    out.per_core.resize(model.cores().size());
    for (const CoreTimeline& tl : model.cores())
        out.per_core[tl.core] = buildCoreIntervals(tl);
    return out;
}

std::vector<Interval>
IntervalSet::select(std::uint16_t core, IntervalClass cls) const
{
    std::vector<Interval> out;
    for (const Interval& i : per_core.at(core)) {
        if (i.cls == cls)
            out.push_back(i);
    }
    return out;
}

const Interval*
IntervalSet::spuRun(std::uint32_t spe_index) const
{
    for (const Interval& i : per_core.at(spe_index + 1)) {
        if (i.cls == IntervalClass::Run)
            return &i;
    }
    return nullptr;
}

} // namespace cell::ta
