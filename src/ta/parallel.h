/**
 * @file
 * Parallel trace analysis: a work-stealing worker pool plus a sharded,
 * three-phase TraceModel builder and per-core parallel interval /
 * statistics construction.
 *
 * Pipeline (docs/MODEL.md "Parallel analysis" has the full story):
 *
 *   1. SCAN (parallel)    — each shard (a contiguous record range) is
 *      scanned into a per-core summary: last sync seen, drop-marker
 *      counts split around the shard's first sync, records that
 *      precede any sync. The summary is a transfer function over the
 *      per-core clock state, independent of what came before.
 *   2. COMBINE (serial, O(shards x cores)) — summaries fold left to
 *      right into the exact clock state entering every shard. The
 *      fold is associative (property-tested), so any shard split of a
 *      trace yields the same states.
 *   3. EMIT (parallel)    — each shard replays the serial per-record
 *      loop from its incoming state, producing per-core event runs.
 *   4. MERGE (parallel per core) — runs concatenate in canonical
 *      (core, shard) order — shard order IS stream order, so per-core
 *      event order equals the serial builder's — then the same
 *      monotonic-clamp pass runs per core.
 *
 * Intervals and statistics then build per core in parallel, through
 * the very same per-core functions the serial path uses.
 *
 * Determinism contract: for any trace, any thread count, and any
 * shard granularity, every structure this header produces is
 * IDENTICAL to the serial analyzer's — same events, intervals,
 * statistics, and byte-identical printed reports. Parallelism changes
 * wall-clock time, never output. The differential test harness
 * (tests/ta/test_parallel_diff.cc) enforces this on every workload,
 * salvaged, and fault-injected trace in the suite.
 */

#ifndef CELL_TA_PARALLEL_H
#define CELL_TA_PARALLEL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "ta/analyzer.h"
#include "ta/cancel.h"
#include "util/worker_pool.h"

namespace cell::ta {

/**
 * The work-stealing pool now lives in util/worker_pool.h so the trace
 * layer (pipelined block decode) and the analysis layer share one
 * implementation; re-exported here so every existing ta::WorkerPool
 * call site keeps compiling unchanged.
 */
using util::WorkerPool;

/** Knobs for the parallel analyzer. */
struct ParallelOptions
{
    /** Worker threads; 0 = hardware concurrency. 1 forces the legacy
     *  serial path (exactly analyze()/analyzeFile()). */
    unsigned threads = 0;
    /** Records per shard; 0 derives one from the thread count. Small
     *  values are legal (tests use them to force many shards). */
    std::uint64_t shard_records = 0;
    /** Optional cooperative cancellation, polled at shard/core
     *  boundaries; a tripped token aborts the analysis with
     *  DeadlineExceeded instead of running it to completion. When set,
     *  threads == 1 runs the (output-identical) parallel pipeline on
     *  an inline pool rather than the legacy serial path, so the
     *  checkpoints stay in play. */
    const CancelToken* cancel = nullptr;
};

/** Parallel equivalent of TraceModel::build — identical output. */
TraceModel buildModelParallel(const trace::TraceData& trace,
                              WorkerPool& pool, bool lenient = false,
                              std::uint64_t shard_records = 0,
                              const CancelToken* cancel = nullptr);

/** Parallel equivalent of IntervalSet::build — identical output. */
IntervalSet buildIntervalsParallel(const TraceModel& model,
                                   WorkerPool& pool,
                                   const CancelToken* cancel = nullptr);

/** Parallel equivalent of TraceStats::build — identical output. */
TraceStats buildStatsParallel(const TraceModel& model,
                              const IntervalSet& ivs, WorkerPool& pool,
                              const CancelToken* cancel = nullptr);

/** Full parallel analysis on an already-loaded trace. */
Analysis analyzeParallel(const trace::TraceData& trace,
                         const ParallelOptions& opt = {},
                         bool lenient = false);

/** Same, reusing an existing pool (benchmarks, repeated analyses). */
Analysis analyzeParallel(const trace::TraceData& trace, WorkerPool& pool,
                         bool lenient = false,
                         std::uint64_t shard_records = 0,
                         const CancelToken* cancel = nullptr);

/** Shard the file itself (trace::planShardsFile), ingest the shards
 *  concurrently, then run the parallel analysis. Equivalent to
 *  analyzeFile() on any healthy trace; a damaged or non-seekable file
 *  fails with a diagnostic. threads == 1 IS analyzeFile(). */
Analysis analyzeFileParallel(const std::string& path,
                             const ParallelOptions& opt = {});

/** Salvage-read (serial — resync needs the whole stream) then analyze
 *  the recovered subset in parallel, leniently. */
Analysis analyzeFileSalvageParallel(const std::string& path,
                                    trace::ReadReport& report,
                                    const ParallelOptions& opt = {});

/**
 * Internals of the scan/combine phases, exposed so property tests can
 * check the invariants the pipeline rests on (split-invariance and
 * associativity of combine). Not part of the stable API.
 */
namespace scan {

/** Per-core summary of one record range. */
struct CoreScan
{
    bool saw_sync = false;
    std::uint32_t last_sync_raw = 0;
    std::uint64_t last_sync_tb = 0;
    /** Drop markers in the range (all of them). */
    std::uint64_t drops_total = 0;
    /** Drop markers before the range's first sync record (==
     *  drops_total when the range has no sync). */
    std::uint64_t drops_before_sync = 0;
    /** This core's records before the range's first sync record. */
    std::uint64_t records_before_sync = 0;
    /** Absolute index of the first such record (strict diagnostics). */
    std::uint64_t first_presync_index = ~std::uint64_t{0};

    bool operator==(const CoreScan&) const = default;
};

/** Summary of one record range over all cores. */
struct RangeScan
{
    std::vector<CoreScan> cores;
    std::uint64_t bad_core_records = 0;
    std::uint64_t first_bad_core_index = ~std::uint64_t{0};

    bool operator==(const RangeScan&) const = default;
};

/** Scan records [first, first+count) of @p trace. */
RangeScan scanRange(const trace::TraceData& trace, std::uint64_t first,
                    std::uint64_t count, std::uint32_t n_cores);

/** Fold @p next (the range immediately after) into @p into.
 *  Associative: combine(combine(a,b),c) == combine(a,combine(b,c)). */
void combine(RangeScan& into, const RangeScan& next);

} // namespace scan

} // namespace cell::ta

#endif // CELL_TA_PARALLEL_H
