/**
 * @file
 * Statistics computation.
 */

#include "ta/stats.h"

#include <algorithm>
#include <cmath>

namespace cell::ta {

using rt::ApiOp;

Histogram::Histogram(unsigned bits) : buckets_(bits + 1, 0) {}

void
Histogram::add(std::uint64_t value)
{
    std::size_t b = 0;
    while (b + 1 < buckets_.size() && bucketLo(b + 1) <= value)
        ++b;
    buckets_[b] += 1;
    count_ += 1;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen > target)
            return bucketLo(b);
    }
    return max_;
}

std::vector<DmaTransfer>
matchDmaTransfers(const IntervalSet& ivs, std::uint32_t spe)
{
    const auto& intervals = ivs.per_core.at(spe + 1);
    std::vector<const Interval*> waits;
    for (const Interval& iv : intervals) {
        if (iv.cls == IntervalClass::DmaWait)
            waits.push_back(&iv);
    }
    std::sort(waits.begin(), waits.end(),
              [](const Interval* x, const Interval* y) {
                  return x->end_tb < y->end_tb;
              });

    std::vector<DmaTransfer> out;
    for (const Interval& iv : intervals) {
        if (iv.cls != IntervalClass::DmaCommand)
            continue;
        DmaTransfer t;
        t.op = iv.op;
        t.spe = spe;
        t.ls = iv.a;
        t.ea = iv.b;
        t.size = iv.c;
        t.tag = iv.d & 31u;
        t.issue_tb = iv.start_tb;
        const std::uint32_t tag_bit = 1u << t.tag;
        for (const Interval* w : waits) {
            if (w->end_tb < iv.start_tb)
                continue;
            // a = requested mask; end_b = completed mask.
            const auto mask =
                static_cast<std::uint32_t>(w->end_b ? w->end_b : w->a);
            if (mask & tag_bit) {
                t.complete_tb = w->end_tb;
                t.observed = true;
                break;
            }
        }
        out.push_back(t);
    }
    return out;
}

void
TraceStats::resizeFor(const TraceModel& model)
{
    const std::uint32_t n_spes = model.numSpes();
    spu.resize(n_spes);
    dma.resize(n_spes);
    flush.resize(n_spes);
    loss.resize(n_spes + 1);
    op_counts.resize(n_spes + 1);
    for (auto& row : op_counts)
        row.fill(0);
}

void
TraceStats::buildCore(const TraceModel& model, const IntervalSet& ivs,
                      std::uint16_t core)
{
    // Event counts, flush markers and drop markers straight from the
    // timeline.
    const CoreTimeline& tl = model.cores()[core];
    for (const Event& ev : tl.events) {
        if (ev.kind == trace::kFlushRecord && core > 0) {
            FlushStats& f = flush[core - 1];
            f.flushes += 1;
            f.flushed_records += ev.a;
            f.flush_wait_cycles += ev.b;
        }
        if (ev.kind == trace::kDropRecord) {
            CoreLoss& l = loss[core];
            l.drop_markers += 1;
            l.dropped_events += ev.a; // events lost in this gap
        }
        if (!ev.isToolRecord())
            loss[core].recorded_events += 1;
        if (!ev.isToolRecord() && ev.isKnownOp() && ev.isBegin())
            op_counts[core][static_cast<std::size_t>(ev.op())] += 1;
    }

    // Gap-spanning intervals.
    for (const Interval& iv : ivs.per_core[core]) {
        if (iv.gap)
            loss[core].gap_intervals += 1;
    }

    if (core == 0) {
        for (const Interval& iv : ivs.per_core[0]) {
            if (iv.cls == IntervalClass::PpeCall)
                ppe_call_tb += iv.duration();
        }
        return;
    }

    // Interval-derived SPE breakdown.
    const std::uint32_t i = core - 1;
    SpuBreakdown& b = spu[i];
    b.spe = i;
    for (const Interval& iv : ivs.per_core[core]) {
        switch (iv.cls) {
          case IntervalClass::Run:
            b.ran = true;
            b.run_tb += iv.duration();
            break;
          case IntervalClass::DmaCommand:
            b.dma_cmd_tb += iv.duration();
            break;
          case IntervalClass::DmaWait:
            b.dma_wait_tb += iv.duration();
            break;
          case IntervalClass::MailboxWait:
            b.mbox_wait_tb += iv.duration();
            break;
          case IntervalClass::SignalWait:
            b.signal_wait_tb += iv.duration();
            break;
          default:
            break;
        }
    }

    // DMA latency: each command matched to the first tag-wait end
    // covering its tag group.
    DmaStats& d = dma[i];
    for (const DmaTransfer& t : matchDmaTransfers(ivs, i)) {
        d.commands += 1;
        // For plain commands size = bytes; list commands carry the
        // list byte count instead, so only count plain bytes.
        if (t.op != ApiOp::SpuMfcGetList && t.op != ApiOp::SpuMfcPutList)
            d.bytes += t.size;
        if (t.observed)
            d.latency_tb.add(t.latency_tb());
        else
            d.unobserved += 1;
    }
}

TraceStats
TraceStats::build(const TraceModel& model, const IntervalSet& ivs)
{
    TraceStats st;
    st.resizeFor(model);
    for (std::size_t core = 0; core < model.cores().size(); ++core)
        st.buildCore(model, ivs, static_cast<std::uint16_t>(core));
    for (const CoreTimeline& tl : model.cores())
        st.total_records += tl.events.size();
    return st;
}

double
TraceStats::overlapScore(std::uint32_t i) const
{
    const auto& d = dma.at(i);
    const auto& b = spu.at(i);
    const std::uint64_t service = d.latency_tb.sum();
    if (service == 0)
        return 1.0;
    const double waited = static_cast<double>(b.dma_wait_tb);
    const double score = 1.0 - waited / static_cast<double>(service);
    return std::clamp(score, 0.0, 1.0);
}

double
TraceStats::loadImbalance() const
{
    std::uint64_t max_busy = 0;
    std::uint64_t total = 0;
    std::uint32_t n = 0;
    for (const SpuBreakdown& b : spu) {
        if (!b.ran)
            continue;
        max_busy = std::max(max_busy, b.busy_tb());
        total += b.busy_tb();
        n += 1;
    }
    if (n == 0 || total == 0)
        return 1.0;
    const double mean = static_cast<double>(total) / n;
    return static_cast<double>(max_busy) / mean;
}

} // namespace cell::ta
