/**
 * @file
 * Global-time reconstruction.
 */

#include "ta/model.h"

#include <algorithm>
#include <stdexcept>

namespace cell::ta {

namespace {

/** Per-core reconstruction state. */
struct ClockState
{
    bool have_sync = false;
    std::uint32_t sync_raw = 0;
    std::uint64_t sync_tb = 0;
    std::uint32_t epoch = 0; ///< drop epoch (bumped per kDropRecord)
};

/** Raw 32-bit clock delta since the sync point for one core. The SPU
 *  decrementer counts down; the PPE timebase counts up. Modulo-2^32
 *  subtraction handles wrap in both directions. */
std::uint32_t
rawDelta(bool is_spe, std::uint32_t sync_raw, std::uint32_t raw)
{
    if (is_spe)
        return sync_raw - raw; // down-counter
    return raw - sync_raw;     // up-counter
}

} // namespace

std::vector<CoreTimeline>
TraceModel::emptyTimelines(const trace::TraceData& trace)
{
    std::vector<CoreTimeline> cores(trace.header.num_spes + 1);
    cores[0].core = 0;
    cores[0].label = "PPE";
    for (std::uint32_t i = 0; i < trace.header.num_spes; ++i) {
        auto& tl = cores[i + 1];
        tl.core = static_cast<std::uint16_t>(i + 1);
        tl.label = "SPE" + std::to_string(i);
        if (i < trace.spe_programs.size() && !trace.spe_programs[i].empty())
            tl.label += " (" + trace.spe_programs[i] + ")";
    }
    return cores;
}

TraceModel
TraceModel::build(const trace::TraceData& trace, bool lenient)
{
    TraceModel model;
    model.header_ = trace.header;

    const std::uint32_t n_cores = trace.header.num_spes + 1;
    model.cores_ = emptyTimelines(trace);

    std::vector<ClockState> clocks(n_cores);

    for (const trace::Record& rec : trace.records) {
        if (rec.core >= n_cores) {
            if (lenient) {
                model.leniency_skipped_ += 1;
                continue;
            }
            throw std::runtime_error("TraceModel: record with bad core id");
        }
        ClockState& clk = clocks[rec.core];
        const bool is_spe = rec.core != 0;

        if (rec.kind == trace::kSyncRecord) {
            clk.have_sync = true;
            clk.sync_raw = static_cast<std::uint32_t>(rec.a);
            clk.sync_tb = rec.b;
        }
        if (!clk.have_sync) {
            // A salvaged trace may have lost the sync record this
            // stream prefix depended on; without it the events cannot
            // be placed on the global clock.
            if (lenient) {
                model.leniency_skipped_ += 1;
                continue;
            }
            throw std::runtime_error(
                "TraceModel: event before first sync record on core " +
                std::to_string(rec.core));
        }
        if (rec.kind == trace::kDropRecord)
            clk.epoch += 1; // the gap ends here; what follows is new

        Event ev;
        ev.kind = rec.kind;
        ev.phase = rec.phase;
        ev.core = rec.core;
        ev.epoch = clk.epoch;
        ev.a = rec.a;
        ev.b = rec.b;
        ev.c = rec.c;
        ev.d = rec.d;
        ev.time_tb =
            clk.sync_tb + rawDelta(is_spe, clk.sync_raw, rec.timestamp);
        model.cores_[rec.core].events.push_back(ev);
    }

    // Per-core streams are recorded in order; enforce monotonic times
    // (clock reconstruction can produce equal stamps for back-to-back
    // events within one timebase tick).
    for (auto& tl : model.cores_) {
        std::uint64_t prev = 0;
        for (auto& ev : tl.events) {
            if (ev.time_tb < prev)
                ev.time_tb = prev;
            prev = ev.time_tb;
        }
    }

    bool any = false;
    std::uint64_t lo = ~std::uint64_t{0};
    std::uint64_t hi = 0;
    for (const auto& tl : model.cores_) {
        if (tl.empty())
            continue;
        any = true;
        lo = std::min(lo, tl.firstTime());
        hi = std::max(hi, tl.lastTime());
    }
    model.start_tb_ = any ? lo : 0;
    model.end_tb_ = any ? hi : 0;
    return model;
}

TraceModel
TraceModel::assemble(const trace::Header& header,
                     std::vector<CoreTimeline>&& cores,
                     std::uint64_t leniency_skipped)
{
    TraceModel model;
    model.header_ = header;
    model.cores_ = std::move(cores);
    model.leniency_skipped_ = leniency_skipped;

    bool any = false;
    std::uint64_t lo = ~std::uint64_t{0};
    std::uint64_t hi = 0;
    for (const auto& tl : model.cores_) {
        if (tl.empty())
            continue;
        any = true;
        lo = std::min(lo, tl.firstTime());
        hi = std::max(hi, tl.lastTime());
    }
    model.start_tb_ = any ? lo : 0;
    model.end_tb_ = any ? hi : 0;
    return model;
}

} // namespace cell::ta
