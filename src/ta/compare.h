/**
 * @file
 * Cross-trace differential engine.
 *
 * The paper's workflow was iterative: trace, find the bottleneck, fix
 * it, trace again. This layer automates the "again" step at three
 * depths:
 *
 *  - the legacy side-by-side Comparison (per-SPE breakdown deltas,
 *    `ta compare`), kept for quick eyeballing;
 *  - an interval-level aligner + delta attributor (`ta diff`): match
 *    intervals of the same workload across two runs core-by-core and
 *    op-by-op (tolerating drop-gap tails and core remaps), and split
 *    each aligned pair's time delta into DMA wait / mailbox stall /
 *    DMA command (EIB transfer) / PPE call / compute buckets per core;
 *  - a rolling-window divergence localizer: scan fixed-width windows
 *    (ta::windowSignatures, built on the v2/v3 window machinery) and
 *    report the first window where the runs diverge beyond a
 *    threshold — the causal anchor ("it went wrong HERE first").
 *
 * Verified by the perturb-and-localize suites: generate A, surgically
 * delay B at a known tick (trace::delay), and the diff must localize
 * the first divergence to the window containing that tick and name the
 * perturbed bucket. diff(A, A) is empty and diff is antisymmetric
 * (properties P12/P12a/P12b). See docs/DIFF.md.
 */

#ifndef CELL_TA_COMPARE_H
#define CELL_TA_COMPARE_H

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "ta/analyzer.h"
#include "ta/cancel.h"

namespace cell::ta {

/** Per-SPE deltas between two analyses (B minus A), timebase ticks. */
struct SpuDelta
{
    std::uint32_t spe = 0;
    bool ran_in_both = false;
    std::int64_t run_tb = 0;
    std::int64_t busy_tb = 0;
    std::int64_t dma_wait_tb = 0;
    std::int64_t mbox_wait_tb = 0;
    std::int64_t signal_wait_tb = 0;
};

/** The comparison of two analyses. */
struct Comparison
{
    std::vector<SpuDelta> spu;
    /** Span ratio: B / A (< 1 means B is faster). */
    double span_ratio = 1.0;
    /** Record-count ratio: B / A. */
    double records_ratio = 1.0;

    static Comparison build(const Analysis& a, const Analysis& b);
};

/** Print a human-readable comparison (B relative to A). */
void printComparison(std::ostream& os, const Analysis& a, const Analysis& b);

/** One line per core: "core 3: SPE2 (triad_spu)". The diagnostic `ta
 *  compare` / `ta diff` print when two traces' core maps disagree. */
std::string coreMapSummary(const Analysis& a);

/** Non-empty human-readable diagnostic iff the two analyses disagree
 *  on the core count — the misaligned-table case `ta compare` must
 *  refuse (exit 1) instead of silently truncating. */
std::string coreMapMismatch(const Analysis& a, const Analysis& b);

/** Attribution buckets the differential engine splits deltas into.
 *  The first five mirror the interval stall classes; Compute is the
 *  residual of the Run delta not explained by them. */
enum class DiffBucket : std::uint8_t
{
    DmaWait,    ///< tag-status waits
    MboxWait,   ///< blocking mailbox accesses
    SignalWait, ///< blocking signal reads
    DmaCmd,     ///< MFC command enqueue (EIB transfer issue)
    PpeCall,    ///< PPE-side runtime calls
    Compute,    ///< run-time delta not explained by the stalls above
};
constexpr std::size_t kNumDiffBuckets =
    static_cast<std::size_t>(DiffBucket::Compute) + 1;

const char* diffBucketName(DiffBucket b);

/** Aligned core pair with its matched-interval delta attribution.
 *  All deltas are B minus A in timebase ticks. */
struct CoreDelta
{
    int core_a = -1; ///< core id in A, -1 = only present in B
    int core_b = -1; ///< core id in B, -1 = only present in A
    std::string label_a;
    std::string label_b;
    /** Aligned interval pairs (k-th vs k-th of each op, start order). */
    std::uint64_t matched = 0;
    /** Tail intervals with no partner (drop-gap / divergence slack). */
    std::uint64_t unmatched_a = 0;
    std::uint64_t unmatched_b = 0;
    std::uint64_t unmatched_tb_a = 0; ///< their summed durations
    std::uint64_t unmatched_tb_b = 0;
    /** Σ duration deltas of matched Run pairs. */
    std::int64_t run_tb = 0;
    /** Per-bucket delta; [Compute] = run_tb minus the others when the
     *  core has matched Run pairs, else 0. */
    std::array<std::int64_t, kNumDiffBuckets> bucket_tb{};
};

/** One rolling window of the divergence scan. */
struct DiffWindow
{
    std::uint64_t index = 0;
    std::uint64_t from_tb = 0;
    std::uint64_t to_tb = 0; ///< exclusive
    /** Divergence magnitude: Σ over aligned cores of the signature
     *  difference (occupancy + event-offset + count terms), ticks. */
    std::uint64_t score = 0;
};

/** Knobs for diffAnalyses. */
struct DiffOptions
{
    /** Rolling-window width in ticks; 0 = max(span)/64 (min 1). */
    std::uint64_t window = 0;
    /** A window diverges when its score exceeds this (default: any
     *  difference at all). */
    std::uint64_t threshold = 0;
};

/** The full differential of two analyses (B relative to A). */
struct DiffResult
{
    std::uint64_t records_a = 0;
    std::uint64_t records_b = 0;
    std::uint64_t start_a = 0;
    std::uint64_t start_b = 0;
    std::uint64_t span_a = 0;
    std::uint64_t span_b = 0;
    bool salvaged_a = false; ///< side was salvage-read (diffFiles)
    bool salvaged_b = false;

    /** Aligned pairs first (A order), then A-only, then B-only. */
    std::vector<CoreDelta> cores;

    std::uint64_t window_tb = 0;    ///< effective window width
    std::uint64_t threshold_tb = 0;
    std::uint64_t windows_total = 0;
    std::uint64_t windows_diverged = 0;
    bool diverged = false;
    DiffWindow first; ///< first divergent window; valid iff diverged

    /** Bucket with the largest absolute total delta across cores;
     *  have_mover is false when every bucket total is zero. */
    bool have_mover = false;
    DiffBucket mover = DiffBucket::Compute;
    std::int64_t mover_tb = 0;
};

/** Diff two in-memory analyses. @throws std::invalid_argument if the
 *  derived window count would be absurd (tiny --window over a huge
 *  span); @throws std::runtime_error never otherwise. */
DiffResult diffAnalyses(const Analysis& a, const Analysis& b,
                        const DiffOptions& opt = {});

/** Knobs for diffFiles. */
struct DiffFileOptions
{
    DiffOptions diff;
    /** Analysis threads per side; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** Salvage-read both sides unconditionally. */
    bool salvage = false;
    /** Strict read failed -> retry that side in salvage mode (the
     *  serve path's degradation contract), noting what was lost. */
    bool auto_downgrade = false;
    /** Optional cooperative cancellation (per-pair deadlines in
     *  `ta diff-corpus`); trips as DeadlineExceeded. */
    const CancelToken* cancel = nullptr;
};

/** diffFiles plus what degradation had to be applied per side. */
struct DiffFileOutcome
{
    DiffResult result;
    /** Salvage summaries, empty when the side read cleanly. */
    std::string note_a;
    std::string note_b;
};

/** Load (parallel, optionally salvaging) and diff two trace files. */
DiffFileOutcome diffFiles(const std::string& path_a,
                          const std::string& path_b,
                          const DiffFileOptions& opt = {});

/** Deterministic textual report (B relative to A), ticks throughout —
 *  the byte-compare artifact of the diff differential tests. */
std::string diffReport(const DiffResult& r);

/** Deterministic JSON rendering (stable key order, integers only) —
 *  `ta diff --json` and the committed golden diff digest. */
std::string diffJson(const DiffResult& r);

} // namespace cell::ta

#endif // CELL_TA_COMPARE_H
