/**
 * @file
 * A/B trace comparison.
 *
 * The paper's workflow was iterative: trace, find the bottleneck, fix
 * it, trace again. This view automates the "again" step: align two
 * analyses (e.g. single- vs double-buffered, skewed vs balanced) and
 * report per-SPE deltas of the quantities the breakdown tracks, plus
 * an overall verdict on where the time went.
 */

#ifndef CELL_TA_COMPARE_H
#define CELL_TA_COMPARE_H

#include <iosfwd>
#include <vector>

#include "ta/analyzer.h"

namespace cell::ta {

/** Per-SPE deltas between two analyses (B minus A), timebase ticks. */
struct SpuDelta
{
    std::uint32_t spe = 0;
    bool ran_in_both = false;
    std::int64_t run_tb = 0;
    std::int64_t busy_tb = 0;
    std::int64_t dma_wait_tb = 0;
    std::int64_t mbox_wait_tb = 0;
    std::int64_t signal_wait_tb = 0;
};

/** The comparison of two analyses. */
struct Comparison
{
    std::vector<SpuDelta> spu;
    /** Span ratio: B / A (< 1 means B is faster). */
    double span_ratio = 1.0;
    /** Record-count ratio: B / A. */
    double records_ratio = 1.0;

    static Comparison build(const Analysis& a, const Analysis& b);
};

/** Print a human-readable comparison (B relative to A). */
void printComparison(std::ostream& os, const Analysis& a, const Analysis& b);

} // namespace cell::ta

#endif // CELL_TA_COMPARE_H
