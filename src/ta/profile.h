/**
 * @file
 * Time-bucketed activity profile.
 *
 * The original TA's activity graph: the trace span is divided into N
 * equal buckets and, per core and bucket, the fraction of time spent
 * computing vs stalled is computed from the intervals. Rendered as a
 * character "heat row" per core (ASCII dashboards) or exported as CSV
 * time series for plotting.
 */

#ifndef CELL_TA_PROFILE_H
#define CELL_TA_PROFILE_H

#include <iosfwd>
#include <vector>

#include "ta/analyzer.h"

namespace cell::ta {

/** Per-core, per-bucket activity fractions. */
struct ActivityProfile
{
    std::uint32_t buckets = 0;
    std::uint64_t start_tb = 0;
    std::uint64_t bucket_tb = 0; ///< timebase ticks per bucket

    /** [core][bucket]: fraction of the bucket inside a Run interval. */
    std::vector<std::vector<double>> running;
    /** [core][bucket]: fraction of the bucket spent stalled
     *  (DMA/mailbox/signal waits). */
    std::vector<std::vector<double>> stalled;

    /** busy = running - stalled, clamped at 0. */
    double busyFrac(std::uint16_t core, std::uint32_t bucket) const
    {
        const double b = running[core][bucket] - stalled[core][bucket];
        return b > 0 ? b : 0;
    }

    static ActivityProfile build(const TraceModel& model,
                                 const IntervalSet& ivs,
                                 std::uint32_t buckets = 60);
};

/**
 * Character heat rows, one per SPE (and the PPE):
 * ' ' idle, '.' <20% busy, ':' <40%, '-' <60%, '=' <80%, '#' >=80%;
 * a bucket that is mostly stall renders as 'x'.
 */
void printActivity(std::ostream& os, const Analysis& a,
                   std::uint32_t buckets = 60);

/** CSV time series: core,bucket,start_us,running,stalled,busy. */
void exportActivityCsv(std::ostream& os, const Analysis& a,
                       std::uint32_t buckets = 60);

} // namespace cell::ta

#endif // CELL_TA_PROFILE_H
