/**
 * @file
 * Timeline visualization: the TA's signature view. One row per core,
 * time left-to-right, colored (SVG) or lettered (ASCII) by state:
 * computing, issuing DMA, waiting on DMA, waiting on a mailbox or
 * signal. This is the picture the paper's use cases read buffering
 * problems and load imbalance from.
 */

#ifndef CELL_TA_TIMELINE_H
#define CELL_TA_TIMELINE_H

#include <string>

#include "ta/intervals.h"
#include "ta/model.h"

namespace cell::ta {

/** Rendering options. */
struct TimelineOptions
{
    /** Characters (ASCII) or pixels (SVG) across the time axis. */
    unsigned width = 100;
    /** SVG: pixel height of one core's row. */
    unsigned row_height = 22;
    /** Include the PPE row. */
    bool show_ppe = true;
    /** Restrict to [start_tb, end_tb]; 0,0 = whole trace. */
    std::uint64_t start_tb = 0;
    std::uint64_t end_tb = 0;
};

/**
 * ASCII timeline. Legend:
 *   '#' computing   'd' issuing DMA   'D' waiting on DMA
 *   'M' mailbox wait   'S' signal wait   'P' PPE runtime call
 *   '.' idle / not running
 */
std::string renderAscii(const TraceModel& model, const IntervalSet& ivs,
                        const TimelineOptions& opt = {});

/** SVG timeline document. */
std::string renderSvg(const TraceModel& model, const IntervalSet& ivs,
                      const TimelineOptions& opt = {});

/** Write the SVG timeline to @p path. */
void writeSvg(const std::string& path, const TraceModel& model,
              const IntervalSet& ivs, const TimelineOptions& opt = {});

} // namespace cell::ta

#endif // CELL_TA_TIMELINE_H
