/**
 * @file
 * Windowed query implementation: block cache, the window-aware
 * interval matcher, the brute-force reference filter, and the indexed
 * per-core replay.
 *
 * Correctness rests on three facts (argued in detail at the relevant
 * code below, enforced end to end by tests/ta/test_query_diff.cc and
 * properties P9/P9b):
 *
 *   1. Entry selection uses the LATEST index entry whose tick is
 *      STRICTLY below the window start, so every skipped event has a
 *      clamped time <= entry.tick < from — none can be in the window.
 *   2. The matcher's per-op pending occupancy at the entry is exactly
 *      the entry's open_begins mask intersected with the pendable ops;
 *      a phantom (pre-entry) pending's End is consumed silently since
 *      its interval started before the window.
 *   3. Filtering to the window commutes with the reference's
 *      stable_sort: windowed emission order equals the reference
 *      emission order restricted to the shared items, and stable_sort
 *      by start time preserves that restriction.
 */

#include "ta/query.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "ta/parallel.h"
#include "trace/replay.h"
#include "trace/shard.h"

namespace cell::ta {

using rt::ApiOp;

// ---------------------------------------------------------------------------
// Block cache

BlockCache::BlockCache(std::size_t capacity_bytes)
    : capacity_(capacity_bytes)
{
}

namespace {

std::string
blockKey(const std::string& file_id, std::uint64_t block)
{
    return file_id + '#' + std::to_string(block);
}

std::size_t
blockBytes(const std::string& key, const BlockCache::Block& b)
{
    return key.size() + sizeof(trace::Record) * b->size() + 128;
}

} // namespace

BlockCache::Block
BlockCache::get(const std::string& file_id, std::uint64_t block,
                const std::function<std::vector<trace::Record>()>& load)
{
    const std::string key = blockKey(file_id, block);
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            stats_.hits += 1;
            return it->second->block;
        }
        stats_.misses += 1;
    }

    // Load outside the lock: concurrent misses on the same key may
    // both read the file; the blocks are identical and immutable, so
    // whichever insert loses just drops its copy.
    Block loaded = std::make_shared<const std::vector<trace::Record>>(load());

    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->block;
    }
    lru_.push_front(Entry{key, loaded});
    map_[key] = lru_.begin();
    bytes_ += blockBytes(key, loaded);
    while (bytes_ > capacity_ && lru_.size() > 1) {
        const Entry& victim = lru_.back();
        bytes_ -= blockBytes(victim.key, victim.block);
        map_.erase(victim.key);
        lru_.pop_back();
        stats_.evictions += 1;
    }
    return loaded;
}

std::string
BlockCache::fileId(const std::string& path)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    std::uint64_t sz = ec ? 0 : static_cast<std::uint64_t>(size);
    const auto mtime = std::filesystem::last_write_time(path, ec);
    const std::uint64_t mt =
        ec ? 0
           : static_cast<std::uint64_t>(
                 mtime.time_since_epoch().count());

    // Content fingerprint: FNV-1a over the first and last 4 KiB. An
    // in-place same-size rewrite that lands within the filesystem's
    // mtime granularity is invisible to (path,size,mtime); the
    // fingerprint catches it as long as the rewrite touches the head
    // or tail block — which every header/footer-bearing trace rewrite
    // does. Two small reads per query, amortized over many block hits.
    std::uint64_t fp = 14695981039346656037ULL; // FNV-1a offset basis
    const auto fold = [&fp](const char* data, std::streamsize n) {
        for (std::streamsize i = 0; i < n; ++i) {
            fp ^= static_cast<unsigned char>(data[i]);
            fp *= 1099511628211ULL;
        }
    };
    std::ifstream is(path, std::ios::binary);
    if (is) {
        char buf[4096];
        is.read(buf, sizeof(buf));
        fold(buf, is.gcount());
        if (sz > sizeof(buf)) {
            is.clear();
            is.seekg(static_cast<std::streamoff>(
                sz - std::min<std::uint64_t>(sz, sizeof(buf))));
            is.read(buf, sizeof(buf));
            fold(buf, is.gcount());
        }
    }
    return path + '|' + std::to_string(sz) + '|' + std::to_string(mt) +
           '|' + std::to_string(fp);
}

BlockCache::Stats
BlockCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::size_t
BlockCache::sizeBytes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return bytes_;
}

void
BlockCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    lru_.clear();
    map_.clear();
    bytes_ = 0;
}

BlockCache&
sharedBlockCache()
{
    static BlockCache cache;
    return cache;
}

// ---------------------------------------------------------------------------
// Window-aware interval matcher

namespace {

/**
 * buildCoreIntervals (intervals.cc), restricted to intervals that
 * START inside [from, to) — plus the phantom-pending machinery that
 * makes mid-stream resume exact. Every branch mirrors the reference;
 * where the reference would emit an interval, emitIfInWindow() keeps
 * it only when start_tb lands in the window. A phantom slot marks "the
 * reference has a pending here whose Begin predates the resume point":
 * its End is consumed without emitting (the interval starts before the
 * window, so the reference's emission is filtered out anyway), and a
 * real Begin overwrites the phantom just as it would overwrite the
 * reference's stale pending... except the reference can't have a stale
 * pending (one slot per op), so a Begin simply clears the flag.
 */
class WindowMatcher
{
  public:
    WindowMatcher(std::uint16_t core, std::uint64_t from, std::uint64_t to,
                  std::uint64_t phantom_mask, bool phantom_run)
        : core_(core), from_(from), to_(to), phantom_(phantom_mask),
          phantom_run_(phantom_run)
    {
    }

    void feed(const Event& ev)
    {
        final_epoch_ = ev.epoch;
        if (ev.isToolRecord() || !ev.isKnownOp())
            return;
        const ApiOp op = ev.op();

        if (op == ApiOp::SpuStart) {
            run_start_ev_ = ev;
            have_run_start_ = true;
            phantom_run_ = false;
            return;
        }
        if (op == ApiOp::SpuStop) {
            if (!have_run_start_ && phantom_run_) {
                // Run started before the resume point: the reference
                // emits an interval starting before the window.
                phantom_run_ = false;
                return;
            }
            Interval run;
            run.cls = IntervalClass::Run;
            run.op = ApiOp::SpuStart;
            run.core = core_;
            run.start_tb =
                have_run_start_ ? run_start_ev_.time_tb : ev.time_tb;
            run.end_tb = ev.time_tb;
            run.a = ev.a; // exit code
            run.truncated = !have_run_start_;
            run.gap = have_run_start_ && run_start_ev_.epoch != ev.epoch;
            emitIfInWindow(run);
            have_run_start_ = false;
            return;
        }

        const auto idx = static_cast<std::size_t>(op);
        const std::uint64_t bit = std::uint64_t{1} << idx;
        if (ev.isBegin()) {
            const auto cls = classifyOp(op);
            if (cls == IntervalClass::Other) {
                Interval i;
                i.cls = cls;
                i.op = op;
                i.core = core_;
                i.start_tb = i.end_tb = ev.time_tb;
                i.a = ev.a;
                i.b = ev.b;
                i.c = ev.c;
                i.d = ev.d;
                emitIfInWindow(i);
            } else {
                pending_[idx] = ev;
                phantom_ &= ~bit;
            }
        } else {
            if (!pending_[idx] && (phantom_ & bit)) {
                // End of a pre-window Begin: interval starts before
                // the window, the reference's emission is filtered.
                phantom_ &= ~bit;
                return;
            }
            Interval i;
            i.cls = classifyOp(op);
            i.op = op;
            i.core = core_;
            if (pending_[idx]) {
                const Event& b = *pending_[idx];
                i.start_tb = b.time_tb;
                i.a = b.a;
                i.b = b.b;
                i.c = b.c;
                i.d = b.d;
                i.gap = b.epoch != ev.epoch;
                pending_[idx].reset();
            } else {
                i.start_tb = ev.time_tb;
                i.truncated = true;
            }
            i.end_tb = ev.time_tb;
            i.end_b = ev.b;
            emitIfInWindow(i);
        }
    }

    /** True if some real pending (or the run start) began inside the
     *  window — its interval is a window member that only materializes
     *  later, so replay must not stop yet. */
    bool hasWindowPending() const
    {
        for (const auto& p : pending_) {
            if (p && p->time_tb >= from_ && p->time_tb < to_)
                return true;
        }
        return have_run_start_ && run_start_ev_.time_tb >= from_ &&
               run_start_ev_.time_tb < to_;
    }

    /** Close dangling pendings at the core's last event time — the
     *  reference's trace-end closure, same op-index order. Phantom
     *  slots are skipped: their dangling intervals start pre-window. */
    void finish(std::uint64_t last_time)
    {
        for (auto& p : pending_) {
            if (!p)
                continue;
            Interval i;
            i.cls = classifyOp(p->op());
            i.op = p->op();
            i.core = core_;
            i.start_tb = p->time_tb;
            i.end_tb = last_time;
            i.a = p->a;
            i.b = p->b;
            i.c = p->c;
            i.d = p->d;
            i.truncated = true;
            i.gap = p->epoch != final_epoch_;
            emitIfInWindow(i);
        }
        if (have_run_start_) {
            Interval run;
            run.cls = IntervalClass::Run;
            run.op = ApiOp::SpuStart;
            run.core = core_;
            run.start_tb = run_start_ev_.time_tb;
            run.end_tb = last_time;
            run.truncated = true;
            run.gap = run_start_ev_.epoch != final_epoch_;
            emitIfInWindow(run);
        }
    }

    std::vector<Interval> take()
    {
        std::stable_sort(out_.begin(), out_.end(),
                         [](const Interval& x, const Interval& y) {
                             return x.start_tb < y.start_tb;
                         });
        return std::move(out_);
    }

  private:
    void emitIfInWindow(const Interval& i)
    {
        if (i.start_tb >= from_ && i.start_tb < to_)
            out_.push_back(i);
    }

    std::uint16_t core_;
    std::uint64_t from_;
    std::uint64_t to_;
    std::uint64_t phantom_;
    bool phantom_run_;
    std::array<std::optional<Event>, rt::kNumApiOps> pending_;
    Event run_start_ev_{};
    bool have_run_start_ = false;
    std::uint32_t final_epoch_ = 0;
    std::vector<Interval> out_;
};

} // namespace

// ---------------------------------------------------------------------------
// Brute-force reference

WindowResult
queryWindow(const Analysis& a, std::uint64_t from, std::uint64_t to,
            int core)
{
    WindowResult r;
    r.from = from;
    r.to = to;
    r.header = a.model.header();
    r.leniency_skipped = a.model.leniencySkipped();
    r.cores.resize(a.model.cores().size());
    r.intervals.resize(a.model.cores().size());
    for (const CoreTimeline& tl : a.model.cores()) {
        CoreTimeline& dst = r.cores[tl.core];
        dst.core = tl.core;
        dst.label = tl.label;
        if (core >= 0 && tl.core != core)
            continue;
        for (const Event& ev : tl.events) {
            if (ev.time_tb >= from && ev.time_tb < to)
                dst.events.push_back(ev);
        }
        r.records_scanned += tl.events.size();
        for (const Interval& iv : a.intervals.per_core[tl.core]) {
            if (iv.start_tb >= from && iv.start_tb < to)
                r.intervals[tl.core].push_back(iv);
        }
    }
    return r;
}

// ---------------------------------------------------------------------------
// Indexed per-core replay

namespace {

struct CoreReplay
{
    std::vector<Event> events;
    std::vector<Interval> intervals;
    std::uint64_t scanned = 0;
};

/** Replay one core's window from its best index entry. @p plan carries
 *  the container: for a v3 file the index entry's byte_offset is
 *  VIRTUAL (region + ordinal * 32), and cache blocks are the
 *  compressed blocks themselves (one decode per miss), so the indexed
 *  seek reads only the blocks the window actually touches. */
CoreReplay
replayCoreWindow(const std::string& path, const trace::ShardPlan& plan,
                 const trace::TraceIndex& idx, BlockCache& cache,
                 const std::string& file_id, std::uint16_t core,
                 std::uint64_t from, std::uint64_t to,
                 const CancelToken* cancel)
{
    CoreReplay out;
    const trace::IndexCoreSummary& s = idx.cores[core];
    if (s.num_entries == 0 || from >= to)
        return out;

    // Latest entry with tick strictly below the window start; entry
    // ticks are validated non-decreasing, so partition_point applies.
    const auto begin = idx.entries.begin() + s.first_entry;
    const auto end = begin + s.num_entries;
    auto it = std::partition_point(
        begin, end,
        [from](const trace::IndexEntry& e) { return e.tick < from; });
    if (it != begin)
        --it;
    const trace::IndexEntry& e = *it;

    const std::uint64_t region = idx.header.record_region_offset;
    const std::uint64_t total = idx.header.record_count;
    std::uint64_t rec_i = (e.byte_offset - region) / sizeof(trace::Record);
    const std::uint64_t rec_end =
        (s.end_offset - region) / sizeof(trace::Record);

    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("ta::queryWindowFile: cannot open " + path);

    trace::ClockReplay clk;
    clk.have_sync = (e.flags & trace::kEntryHaveSync) != 0;
    clk.sync_raw = e.sync_raw;
    clk.sync_tb = e.sync_tb;
    clk.epoch = e.epoch;
    std::uint64_t prev = e.tick;
    std::uint64_t last_time = e.tick;

    WindowMatcher matcher(core, from, to, e.open_begins & pendableOpsMask(),
                          (e.open_begins >>
                           static_cast<unsigned>(ApiOp::SpuStart)) &
                              1);
    bool stopped = false;

    // Cache granularity: fixed 4096-record spans for v1 files, the
    // compressed block for v3 (its capacity IS the decode unit).
    const std::uint64_t cap =
        plan.v3 ? plan.block_capacity : BlockCache::kBlockRecords;
    while (rec_i < rec_end && !stopped) {
        if (cancel)
            cancel->checkpoint("queryWindowFile/block");
        const std::uint64_t blk = rec_i / cap;
        const std::uint64_t blk_first = blk * cap;
        BlockCache::Block records = cache.get(
            file_id, blk,
            [&is, &path, &plan, region, total, blk, blk_first, cap] {
                if (plan.v3) {
                    const trace::BlockDirEntry& de = plan.blocks.at(
                        static_cast<std::size_t>(blk));
                    std::vector<std::uint8_t> buf(de.block_bytes);
                    is.clear();
                    is.seekg(static_cast<std::streamoff>(de.offset));
                    is.read(reinterpret_cast<char*>(buf.data()),
                            static_cast<std::streamsize>(buf.size()));
                    if (!is || static_cast<std::uint64_t>(is.gcount()) !=
                                   buf.size())
                        throw std::runtime_error(
                            "ta::queryWindowFile: short read in " + path);
                    trace::BlockHeader bh;
                    std::memcpy(&bh, buf.data(), sizeof(bh));
                    trace::DecodedBlock db;
                    trace::decodeBlockBody(bh, buf.data() + sizeof(bh),
                                           buf.size() - sizeof(bh),
                                           plan.block_capacity, db);
                    return std::move(db.records);
                }
                const std::uint64_t n = std::min(cap, total - blk_first);
                std::vector<trace::Record> v(n);
                is.clear();
                is.seekg(static_cast<std::streamoff>(
                    region + blk_first * sizeof(trace::Record)));
                is.read(reinterpret_cast<char*>(v.data()),
                        static_cast<std::streamsize>(
                            n * sizeof(trace::Record)));
                if (!is)
                    throw std::runtime_error(
                        "ta::queryWindowFile: short read in " + path);
                return v;
            });

        for (std::uint64_t j = rec_i - blk_first;
             j < records->size() && rec_i < rec_end; ++j, ++rec_i) {
            const trace::Record& rec = (*records)[j];
            out.scanned += 1;
            if (rec.core != core)
                continue;
            std::uint64_t t = 0;
            if (!clk.feed(rec, t))
                continue; // unreachable on a strictClean() index
            if (t < prev)
                t = prev;
            prev = t;

            Event ev;
            ev.time_tb = t;
            ev.kind = rec.kind;
            ev.phase = rec.phase;
            ev.core = rec.core;
            ev.epoch = clk.epoch;
            ev.a = rec.a;
            ev.b = rec.b;
            ev.c = rec.c;
            ev.d = rec.d;
            if (t >= from && t < to)
                out.events.push_back(ev);
            matcher.feed(ev);
            last_time = t;

            // Past the window with nothing window-started still open:
            // every later event and interval start is >= to.
            if (t >= to && !matcher.hasWindowPending()) {
                stopped = true;
                break;
            }
        }
    }

    // If we replayed to the core's end, last_time is the core's true
    // last event time (strict-clean: every record places) — the same
    // closure time the reference uses. If we stopped early, no real
    // pending started in the window, so the closure would emit nothing
    // the window keeps.
    if (!stopped)
        matcher.finish(last_time);
    out.intervals = matcher.take();
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// File query

WindowResult
queryWindowFile(const std::string& path, std::uint64_t from,
                std::uint64_t to, const QueryOptions& opt)
{
    if (opt.salvage) {
        trace::ReadReport local;
        trace::ReadReport& rep =
            opt.salvage_report ? *opt.salvage_report : local;
        const Analysis a = analyzeFileSalvageParallel(
            path, rep, ParallelOptions{opt.threads, 0, opt.cancel});
        return queryWindow(a, from, to, opt.core);
    }

    bool use_index = !opt.force_full_scan;
    trace::ShardPlan plan;
    trace::IndexReadResult ir;
    if (use_index) {
        try {
            plan = trace::planShardsFile(path);
            ir = trace::readIndexFile(path);
        } catch (const std::exception&) {
            // Let the full-scan path produce its own diagnostic.
            use_index = false;
        }
        if (use_index && (!ir.valid || !ir.index.strictClean()))
            use_index = false;
    }
    if (!use_index) {
        const Analysis a = analyzeFileParallel(
            path, ParallelOptions{opt.threads, 0, opt.cancel});
        return queryWindow(a, from, to, opt.core);
    }

    const trace::TraceIndex& idx = ir.index;
    WindowResult r;
    r.from = from;
    r.to = to;
    r.header = plan.header;
    r.used_index = true;
    {
        trace::TraceData shell;
        shell.header = plan.header;
        shell.spe_programs = plan.spe_programs;
        r.cores = TraceModel::emptyTimelines(shell);
    }
    r.intervals.resize(r.cores.size());

    BlockCache& cache = opt.cache ? *opt.cache : sharedBlockCache();
    const std::string file_id = BlockCache::fileId(path);
    const std::uint32_t n_cores = plan.header.num_spes + 1;
    std::vector<CoreReplay> per(n_cores);

    const auto run_core = [&](std::uint64_t c) {
        if (opt.core >= 0 && c != static_cast<std::uint64_t>(opt.core))
            return;
        per[c] = replayCoreWindow(path, plan, idx, cache, file_id,
                                  static_cast<std::uint16_t>(c), from, to,
                                  opt.cancel);
    };
    if (opt.threads == 1) {
        for (std::uint64_t c = 0; c < n_cores; ++c)
            run_core(c);
    } else {
        WorkerPool pool(opt.threads);
        pool.parallelFor(n_cores, run_core);
    }

    for (std::uint32_t c = 0; c < n_cores; ++c) {
        r.cores[c].events = std::move(per[c].events);
        r.intervals[c] = std::move(per[c].intervals);
        r.records_scanned += per[c].scanned;
    }
    return r;
}

// ---------------------------------------------------------------------------
// Report / re-analysis

std::string
windowReport(const WindowResult& r)
{
    std::ostringstream os;
    os << "== window [" << r.from << ", " << r.to << ") tb ==\n";
    for (std::size_t c = 0; c < r.cores.size(); ++c) {
        os << "  core " << c << " " << r.cores[c].label << ": "
           << r.cores[c].events.size() << " events, "
           << (c < r.intervals.size() ? r.intervals[c].size() : 0)
           << " intervals\n";
    }
    os << "  leniency skipped: " << r.leniency_skipped << "\n";

    os << "events: core,time_tb,epoch,kind,phase,a,b,c,d\n";
    for (const CoreTimeline& tl : r.cores) {
        for (const Event& ev : tl.events) {
            os << ev.core << ',' << ev.time_tb << ',' << ev.epoch << ','
               << static_cast<unsigned>(ev.kind) << ','
               << static_cast<unsigned>(ev.phase) << ',' << ev.a << ','
               << ev.b << ',' << ev.c << ',' << ev.d << '\n';
        }
    }

    os << "intervals: core,class,op,start_tb,end_tb,a,b,c,d,end_b,"
          "truncated,gap\n";
    for (const auto& per_core : r.intervals) {
        for (const Interval& iv : per_core) {
            os << iv.core << ',' << intervalClassName(iv.cls) << ','
               << rt::apiOpName(iv.op) << ',' << iv.start_tb << ','
               << iv.end_tb << ',' << iv.a << ',' << iv.b << ',' << iv.c
               << ',' << iv.d << ',' << iv.end_b << ','
               << (iv.truncated ? 1 : 0) << ',' << (iv.gap ? 1 : 0)
               << '\n';
        }
    }
    return os.str();
}

Analysis
windowAnalysis(const WindowResult& r)
{
    std::vector<CoreTimeline> cores = r.cores;
    Analysis a{TraceModel::assemble(r.header, std::move(cores),
                                    r.leniency_skipped),
               {}, {}};
    a.intervals.per_core = r.intervals;
    a.stats.resizeFor(a.model);
    std::uint64_t total = 0;
    for (const CoreTimeline& tl : a.model.cores()) {
        a.stats.buildCore(a.model, a.intervals, tl.core);
        total += tl.events.size();
    }
    a.stats.total_records = total;
    return a;
}

std::vector<std::vector<WindowSignature>>
windowSignatures(const Analysis& a, std::uint64_t origin,
                 std::uint64_t width, std::uint64_t count)
{
    if (width == 0)
        throw std::invalid_argument("windowSignatures: zero window width");
    const std::size_t n_cores = a.model.cores().size();
    std::vector<std::vector<WindowSignature>> sigs(
        count, std::vector<WindowSignature>(n_cores));
    if (count == 0)
        return sigs;
    const std::uint64_t end = origin + width * count;
    const auto windowOf = [&](std::uint64_t t) {
        return (t - origin) / width;
    };

    for (const CoreTimeline& tl : a.model.cores()) {
        for (const Event& ev : tl.events) {
            if (ev.time_tb < origin || ev.time_tb >= end)
                continue;
            WindowSignature& s = sigs[windowOf(ev.time_tb)][tl.core];
            s.events += 1;
            s.time_sum += ev.time_tb - (origin + windowOf(ev.time_tb) * width);
        }
    }
    for (const auto& per_core : a.intervals.per_core) {
        for (const Interval& iv : per_core) {
            if (iv.end_tb <= origin || iv.start_tb >= end)
                continue;
            const std::uint64_t lo = std::max(iv.start_tb, origin);
            const std::uint64_t hi = std::min(iv.end_tb, end);
            const std::size_t cls = static_cast<std::size_t>(iv.cls);
            for (std::uint64_t w = windowOf(lo); w < count; ++w) {
                const std::uint64_t wlo = origin + w * width;
                if (wlo >= hi)
                    break;
                const std::uint64_t whi = wlo + width;
                sigs[w][iv.core].occupancy[cls] +=
                    std::min(hi, whi) - std::max(lo, wlo);
            }
        }
    }
    return sigs;
}

} // namespace cell::ta
