/**
 * @file
 * Self-contained HTML report.
 *
 * Bundles every analyzer view — summary, stall breakdown, DMA
 * statistics and latency histogram, event counts, tracer
 * self-observation — plus the inline SVG timeline into one HTML file
 * that opens anywhere. The closest thing to the original TA's
 * interactive window this reproduction ships.
 */

#ifndef CELL_TA_REPORT_H
#define CELL_TA_REPORT_H

#include <iosfwd>
#include <string>

#include "ta/analyzer.h"

namespace cell::ta {

/** Render the full HTML report for one analysis. */
std::string renderHtmlReport(const Analysis& a,
                             const std::string& title = "PDT trace");

/** Write the report to @p path. @throws std::runtime_error. */
void writeHtmlReport(const std::string& path, const Analysis& a,
                     const std::string& title = "PDT trace");

} // namespace cell::ta

#endif // CELL_TA_REPORT_H
