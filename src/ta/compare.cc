/**
 * @file
 * Trace comparison implementation.
 */

#include "ta/compare.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace cell::ta {

namespace {

std::int64_t
delta(std::uint64_t b, std::uint64_t a)
{
    return static_cast<std::int64_t>(b) - static_cast<std::int64_t>(a);
}

} // namespace

Comparison
Comparison::build(const Analysis& a, const Analysis& b)
{
    Comparison out;
    const std::size_t n = std::min(a.stats.spu.size(), b.stats.spu.size());
    out.spu.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const SpuBreakdown& ba = a.stats.spu[i];
        const SpuBreakdown& bb = b.stats.spu[i];
        SpuDelta& d = out.spu[i];
        d.spe = static_cast<std::uint32_t>(i);
        d.ran_in_both = ba.ran && bb.ran;
        d.run_tb = delta(bb.run_tb, ba.run_tb);
        d.busy_tb = delta(bb.busy_tb(), ba.busy_tb());
        d.dma_wait_tb = delta(bb.dma_wait_tb, ba.dma_wait_tb);
        d.mbox_wait_tb = delta(bb.mbox_wait_tb, ba.mbox_wait_tb);
        d.signal_wait_tb = delta(bb.signal_wait_tb, ba.signal_wait_tb);
    }
    out.span_ratio = a.model.spanTb()
                         ? static_cast<double>(b.model.spanTb()) /
                               static_cast<double>(a.model.spanTb())
                         : 1.0;
    out.records_ratio =
        a.stats.total_records
            ? static_cast<double>(b.stats.total_records) /
                  static_cast<double>(a.stats.total_records)
            : 1.0;
    return out;
}

void
printComparison(std::ostream& os, const Analysis& a, const Analysis& b)
{
    const Comparison cmp = Comparison::build(a, b);
    os << "=== Trace comparison (B relative to A) ===\n"
       << std::fixed << std::setprecision(3)
       << "span: " << a.model.tbToUs(a.model.spanTb()) << " us -> "
       << b.model.tbToUs(b.model.spanTb()) << " us  (x" << cmp.span_ratio
       << ")\n"
       << "records: " << a.stats.total_records << " -> "
       << b.stats.total_records << "  (x" << cmp.records_ratio << ")\n\n"
       << "SPE    d.run(us)  d.compute  d.dmawait  d.mboxwait  d.sigwait\n";
    for (const SpuDelta& d : cmp.spu) {
        if (!d.ran_in_both)
            continue;
        auto us = [&](std::int64_t tb) {
            return (tb < 0 ? -1.0 : 1.0) *
                   a.model.tbToUs(static_cast<std::uint64_t>(
                       tb < 0 ? -tb : tb));
        };
        os << std::left << std::setw(5) << ("SPE" + std::to_string(d.spe))
           << std::right << std::setprecision(1) << std::setw(11)
           << us(d.run_tb) << std::setw(11) << us(d.busy_tb)
           << std::setw(11) << us(d.dma_wait_tb) << std::setw(12)
           << us(d.mbox_wait_tb) << std::setw(11) << us(d.signal_wait_tb)
           << "\n";
    }

    // Verdict: which stall class moved the most, summed over SPEs.
    std::int64_t dma = 0, mbox = 0, sig = 0;
    for (const SpuDelta& d : cmp.spu) {
        dma += d.dma_wait_tb;
        mbox += d.mbox_wait_tb;
        sig += d.signal_wait_tb;
    }
    const std::int64_t adma = dma < 0 ? -dma : dma;
    const std::int64_t ambox = mbox < 0 ? -mbox : mbox;
    const std::int64_t asig = sig < 0 ? -sig : sig;
    const char* what = "DMA wait";
    std::int64_t moved = dma;
    if (ambox > adma && ambox >= asig) {
        what = "mailbox wait";
        moved = mbox;
    } else if (asig > adma && asig > ambox) {
        what = "signal wait";
        moved = sig;
    }
    os << "\nbiggest mover: " << what << " ("
       << (moved <= 0 ? "-" : "+") << std::setprecision(1)
       << a.model.tbToUs(static_cast<std::uint64_t>(moved < 0 ? -moved
                                                              : moved))
       << " us total across SPEs)\n";
}

} // namespace cell::ta
