/**
 * @file
 * Cross-trace differential engine implementation.
 *
 * Alignment is structural, not temporal: within an aligned core pair,
 * the k-th interval of each op in A matches the k-th in B (start
 * order), so a time shift never breaks the pairing — it shows up as a
 * duration delta on the interval that absorbed it and as a signature
 * mismatch in the rolling-window scan. Unpaired tails (drop gaps, one
 * run doing more work) are reported, not force-matched.
 */

#include "ta/compare.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ta/parallel.h"
#include "ta/query.h"

namespace cell::ta {

namespace {

std::int64_t
delta(std::uint64_t b, std::uint64_t a)
{
    return static_cast<std::int64_t>(b) - static_cast<std::int64_t>(a);
}

std::uint64_t
absDiff(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : b - a;
}

/** Stall/cmd bucket of an interval class, or -1 (Run, Other). */
int
bucketOf(IntervalClass cls)
{
    switch (cls) {
    case IntervalClass::DmaWait:
        return static_cast<int>(DiffBucket::DmaWait);
    case IntervalClass::MailboxWait:
        return static_cast<int>(DiffBucket::MboxWait);
    case IntervalClass::SignalWait:
        return static_cast<int>(DiffBucket::SignalWait);
    case IntervalClass::DmaCommand:
        return static_cast<int>(DiffBucket::DmaCmd);
    case IntervalClass::PpeCall:
        return static_cast<int>(DiffBucket::PpeCall);
    default:
        return -1;
    }
}

/** Pair the cores of two analyses. Same core count: identity (the
 *  common case — same machine, same workload). Different counts: PPE
 *  to PPE, then SPEs greedily by equal label (tolerates core remaps,
 *  e.g. a blades-spliced run whose programs moved ids), leftovers
 *  reported as one-sided. */
std::vector<CoreDelta>
alignCores(const Analysis& a, const Analysis& b)
{
    const auto& ca = a.model.cores();
    const auto& cb = b.model.cores();
    std::vector<CoreDelta> out;
    if (ca.size() == cb.size()) {
        for (std::size_t i = 0; i < ca.size(); ++i) {
            CoreDelta d;
            d.core_a = static_cast<int>(i);
            d.core_b = static_cast<int>(i);
            d.label_a = ca[i].label;
            d.label_b = cb[i].label;
            out.push_back(std::move(d));
        }
        return out;
    }
    std::vector<char> used_b(cb.size(), 0);
    for (std::size_t i = 0; i < ca.size(); ++i) {
        CoreDelta d;
        d.core_a = static_cast<int>(i);
        d.label_a = ca[i].label;
        if (i == 0 && !cb.empty()) {
            d.core_b = 0;
            d.label_b = cb[0].label;
            used_b[0] = 1;
        } else {
            for (std::size_t j = 1; j < cb.size(); ++j) {
                if (!used_b[j] && cb[j].label == ca[i].label) {
                    d.core_b = static_cast<int>(j);
                    d.label_b = cb[j].label;
                    used_b[j] = 1;
                    break;
                }
            }
        }
        out.push_back(std::move(d));
    }
    // Order: aligned pairs and A-only cores in A order, then B-only.
    std::stable_partition(out.begin(), out.end(),
                          [](const CoreDelta& d) { return d.core_b >= 0; });
    for (std::size_t j = 0; j < cb.size(); ++j) {
        if (used_b[j])
            continue;
        CoreDelta d;
        d.core_b = static_cast<int>(j);
        d.label_b = cb[j].label;
        out.push_back(std::move(d));
    }
    return out;
}

/** Attribute one aligned core pair: k-th-vs-k-th per op. */
void
attributePair(const Analysis& a, const Analysis& b, CoreDelta& d)
{
    static const std::vector<Interval> kNone;
    const auto& iva = d.core_a >= 0
                          ? a.intervals.per_core[static_cast<std::size_t>(
                                d.core_a)]
                          : kNone;
    const auto& ivb = d.core_b >= 0
                          ? b.intervals.per_core[static_cast<std::size_t>(
                                d.core_b)]
                          : kNone;

    std::array<std::vector<const Interval*>, rt::kNumApiOps> by_a{};
    std::array<std::vector<const Interval*>, rt::kNumApiOps> by_b{};
    for (const Interval& iv : iva)
        by_a[static_cast<std::size_t>(iv.op)].push_back(&iv);
    for (const Interval& iv : ivb)
        by_b[static_cast<std::size_t>(iv.op)].push_back(&iv);

    bool run_pair = false;
    for (std::size_t op = 0; op < rt::kNumApiOps; ++op) {
        const auto& va = by_a[op];
        const auto& vb = by_b[op];
        const std::size_t m = std::min(va.size(), vb.size());
        for (std::size_t k = 0; k < m; ++k) {
            const std::int64_t dd =
                delta(vb[k]->duration(), va[k]->duration());
            const IntervalClass cls = va[k]->cls;
            if (cls == IntervalClass::Run) {
                d.run_tb += dd;
                run_pair = true;
            } else {
                const int bk = bucketOf(cls);
                if (bk >= 0)
                    d.bucket_tb[static_cast<std::size_t>(bk)] += dd;
            }
        }
        d.matched += m;
        d.unmatched_a += va.size() - m;
        d.unmatched_b += vb.size() - m;
        for (std::size_t k = m; k < va.size(); ++k)
            d.unmatched_tb_a += va[k]->duration();
        for (std::size_t k = m; k < vb.size(); ++k)
            d.unmatched_tb_b += vb[k]->duration();
    }
    // Compute is the residual of the Run delta the stall/cmd buckets
    // do not explain; without a matched Run pair there is no run time
    // to take a residual of.
    if (run_pair) {
        std::int64_t explained = 0;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(DiffBucket::Compute); ++i)
            explained += d.bucket_tb[i];
        d.bucket_tb[static_cast<std::size_t>(DiffBucket::Compute)] =
            d.run_tb - explained;
    }
}

/** Divergence magnitude between two window signatures: occupancy and
 *  event-offset terms in ticks, plus width ticks per count mismatch. */
std::uint64_t
sigScore(const WindowSignature& x, const WindowSignature& y,
         std::uint64_t width)
{
    std::uint64_t s = 0;
    for (std::size_t c = 0; c < kNumIntervalClasses; ++c)
        s += absDiff(x.occupancy[c], y.occupancy[c]);
    s += absDiff(x.time_sum, y.time_sum);
    s += width * absDiff(x.events, y.events);
    return s;
}

bool
hasEvents(const Analysis& a)
{
    for (const CoreTimeline& tl : a.model.cores()) {
        if (!tl.events.empty())
            return true;
    }
    return false;
}

void
jsonEscape(std::ostream& os, const std::string& s)
{
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << "\\u"
                   << std::setfill('0') << std::setw(4) << std::hex
                   << static_cast<int>(c) << std::dec << std::setfill(' ');
            else
                os << c;
        }
    }
}

} // namespace

Comparison
Comparison::build(const Analysis& a, const Analysis& b)
{
    Comparison out;
    const std::size_t n = std::min(a.stats.spu.size(), b.stats.spu.size());
    out.spu.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const SpuBreakdown& ba = a.stats.spu[i];
        const SpuBreakdown& bb = b.stats.spu[i];
        SpuDelta& d = out.spu[i];
        d.spe = static_cast<std::uint32_t>(i);
        d.ran_in_both = ba.ran && bb.ran;
        d.run_tb = delta(bb.run_tb, ba.run_tb);
        d.busy_tb = delta(bb.busy_tb(), ba.busy_tb());
        d.dma_wait_tb = delta(bb.dma_wait_tb, ba.dma_wait_tb);
        d.mbox_wait_tb = delta(bb.mbox_wait_tb, ba.mbox_wait_tb);
        d.signal_wait_tb = delta(bb.signal_wait_tb, ba.signal_wait_tb);
    }
    out.span_ratio = a.model.spanTb()
                         ? static_cast<double>(b.model.spanTb()) /
                               static_cast<double>(a.model.spanTb())
                         : 1.0;
    out.records_ratio =
        a.stats.total_records
            ? static_cast<double>(b.stats.total_records) /
                  static_cast<double>(a.stats.total_records)
            : 1.0;
    return out;
}

void
printComparison(std::ostream& os, const Analysis& a, const Analysis& b)
{
    const Comparison cmp = Comparison::build(a, b);
    os << "=== Trace comparison (B relative to A) ===\n"
       << std::fixed << std::setprecision(3)
       << "span: " << a.model.tbToUs(a.model.spanTb()) << " us -> "
       << b.model.tbToUs(b.model.spanTb()) << " us  (x" << cmp.span_ratio
       << ")\n"
       << "records: " << a.stats.total_records << " -> "
       << b.stats.total_records << "  (x" << cmp.records_ratio << ")\n\n"
       << "SPE    d.run(us)  d.compute  d.dmawait  d.mboxwait  d.sigwait\n";
    for (const SpuDelta& d : cmp.spu) {
        if (!d.ran_in_both)
            continue;
        auto us = [&](std::int64_t tb) {
            return (tb < 0 ? -1.0 : 1.0) *
                   a.model.tbToUs(static_cast<std::uint64_t>(
                       tb < 0 ? -tb : tb));
        };
        os << std::left << std::setw(5) << ("SPE" + std::to_string(d.spe))
           << std::right << std::setprecision(1) << std::setw(11)
           << us(d.run_tb) << std::setw(11) << us(d.busy_tb)
           << std::setw(11) << us(d.dma_wait_tb) << std::setw(12)
           << us(d.mbox_wait_tb) << std::setw(11) << us(d.signal_wait_tb)
           << "\n";
    }

    // Verdict: which stall class moved the most, summed over SPEs.
    std::int64_t dma = 0, mbox = 0, sig = 0;
    for (const SpuDelta& d : cmp.spu) {
        dma += d.dma_wait_tb;
        mbox += d.mbox_wait_tb;
        sig += d.signal_wait_tb;
    }
    const std::int64_t adma = dma < 0 ? -dma : dma;
    const std::int64_t ambox = mbox < 0 ? -mbox : mbox;
    const std::int64_t asig = sig < 0 ? -sig : sig;
    const char* what = "DMA wait";
    std::int64_t moved = dma;
    if (ambox > adma && ambox >= asig) {
        what = "mailbox wait";
        moved = mbox;
    } else if (asig > adma && asig > ambox) {
        what = "signal wait";
        moved = sig;
    }
    os << "\nbiggest mover: " << what << " ("
       << (moved <= 0 ? "-" : "+") << std::setprecision(1)
       << a.model.tbToUs(static_cast<std::uint64_t>(moved < 0 ? -moved
                                                              : moved))
       << " us total across SPEs)\n";
}

std::string
coreMapSummary(const Analysis& a)
{
    std::ostringstream os;
    for (const CoreTimeline& tl : a.model.cores())
        os << "  core " << tl.core << ": " << tl.label << "\n";
    return os.str();
}

std::string
coreMapMismatch(const Analysis& a, const Analysis& b)
{
    if (a.model.cores().size() == b.model.cores().size())
        return {};
    std::ostringstream os;
    os << "core maps disagree: A has " << a.model.numSpes()
       << " SPE(s), B has " << b.model.numSpes() << " SPE(s)\n"
       << "A cores:\n"
       << coreMapSummary(a) << "B cores:\n"
       << coreMapSummary(b);
    return os.str();
}

const char*
diffBucketName(DiffBucket b)
{
    switch (b) {
    case DiffBucket::DmaWait:
        return "dma_wait";
    case DiffBucket::MboxWait:
        return "mbox_wait";
    case DiffBucket::SignalWait:
        return "signal_wait";
    case DiffBucket::DmaCmd:
        return "dma_cmd";
    case DiffBucket::PpeCall:
        return "ppe_call";
    case DiffBucket::Compute:
        return "compute";
    }
    return "?";
}

DiffResult
diffAnalyses(const Analysis& a, const Analysis& b, const DiffOptions& opt)
{
    DiffResult r;
    r.records_a = a.stats.total_records;
    r.records_b = b.stats.total_records;
    r.start_a = a.model.startTb();
    r.start_b = b.model.startTb();
    r.span_a = a.model.spanTb();
    r.span_b = b.model.spanTb();
    r.threshold_tb = opt.threshold;

    r.cores = alignCores(a, b);
    for (CoreDelta& d : r.cores)
        attributePair(a, b, d);

    // Biggest mover: largest absolute bucket total across cores (ties
    // go to the first bucket in enum order, deterministically).
    std::array<std::int64_t, kNumDiffBuckets> totals{};
    for (const CoreDelta& d : r.cores) {
        for (std::size_t i = 0; i < kNumDiffBuckets; ++i)
            totals[i] += d.bucket_tb[i];
    }
    std::int64_t best = 0;
    for (std::size_t i = 0; i < kNumDiffBuckets; ++i) {
        const std::int64_t mag = totals[i] < 0 ? -totals[i] : totals[i];
        if (mag > best) {
            best = mag;
            r.mover = static_cast<DiffBucket>(i);
            r.mover_tb = totals[i];
            r.have_mover = true;
        }
    }

    // Rolling-window divergence scan over the union of both spans.
    const bool ea = hasEvents(a);
    const bool eb = hasEvents(b);
    r.window_tb = opt.window;
    if (ea || eb) {
        const std::uint64_t origin = ea && eb ? std::min(r.start_a, r.start_b)
                                     : ea     ? r.start_a
                                              : r.start_b;
        const std::uint64_t end =
            std::max(ea ? r.start_a + r.span_a : 0,
                     eb ? r.start_b + r.span_b : 0);
        if (r.window_tb == 0)
            r.window_tb = std::max<std::uint64_t>(
                1, std::max(r.span_a, r.span_b) / 64);
        const std::uint64_t count = (end - origin) / r.window_tb + 1;
        if (count > (1u << 22))
            throw std::invalid_argument(
                "diff: window width " + std::to_string(r.window_tb) +
                " yields " + std::to_string(count) +
                " windows over this span; use a wider --window");
        const auto sa = windowSignatures(a, origin, r.window_tb, count);
        const auto sb = windowSignatures(b, origin, r.window_tb, count);
        static const WindowSignature kEmpty{};
        r.windows_total = count;
        for (std::uint64_t w = 0; w < count; ++w) {
            std::uint64_t score = 0;
            for (const CoreDelta& d : r.cores) {
                const WindowSignature& xa =
                    d.core_a >= 0
                        ? sa[w][static_cast<std::size_t>(d.core_a)]
                        : kEmpty;
                const WindowSignature& xb =
                    d.core_b >= 0
                        ? sb[w][static_cast<std::size_t>(d.core_b)]
                        : kEmpty;
                score += sigScore(xa, xb, r.window_tb);
            }
            if (score > opt.threshold) {
                if (!r.diverged) {
                    r.diverged = true;
                    r.first = DiffWindow{w, origin + w * r.window_tb,
                                         origin + (w + 1) * r.window_tb,
                                         score};
                }
                r.windows_diverged += 1;
            }
        }
    } else if (r.window_tb == 0) {
        r.window_tb = 1;
    }
    return r;
}

DiffFileOutcome
diffFiles(const std::string& path_a, const std::string& path_b,
          const DiffFileOptions& opt)
{
    const auto loadSide = [&opt](const std::string& path, bool& salvaged,
                                 std::string& note) {
        const ParallelOptions popt{opt.threads, 0, opt.cancel};
        const auto salvageLoad = [&] {
            trace::ReadReport report;
            Analysis a = analyzeFileSalvageParallel(path, report, popt);
            salvaged = true;
            if (report.salvaged)
                note = report.summary();
            return a;
        };
        if (opt.salvage)
            return salvageLoad();
        if (!opt.auto_downgrade)
            return analyzeFileParallel(path, popt);
        try {
            return analyzeFileParallel(path, popt);
        } catch (const DeadlineExceeded&) {
            throw;
        } catch (const std::exception& e) {
            const std::string why = e.what();
            Analysis a = salvageLoad();
            note = note.empty() ? "downgraded to salvage: " + why
                                : "downgraded to salvage (" + why + "); " +
                                      note;
            return a;
        }
    };

    DiffFileOutcome out;
    bool salvaged_a = false;
    bool salvaged_b = false;
    const Analysis a = loadSide(path_a, salvaged_a, out.note_a);
    const Analysis b = loadSide(path_b, salvaged_b, out.note_b);
    out.result = diffAnalyses(a, b, opt.diff);
    out.result.salvaged_a = salvaged_a;
    out.result.salvaged_b = salvaged_b;
    return out;
}

std::string
diffReport(const DiffResult& r)
{
    std::ostringstream os;
    os << "=== Trace diff (B relative to A) ===\n"
       << "A: " << r.records_a << " records, span " << r.span_a
       << " tb (start " << r.start_a << ")"
       << (r.salvaged_a ? ", salvaged" : "") << "\n"
       << "B: " << r.records_b << " records, span " << r.span_b
       << " tb (start " << r.start_b << ")"
       << (r.salvaged_b ? ", salvaged" : "") << "\n";

    std::uint64_t aligned = 0;
    for (const CoreDelta& d : r.cores)
        aligned += d.core_a >= 0 && d.core_b >= 0;
    os << "cores: " << aligned << " aligned, "
       << (r.cores.size() - aligned) << " one-sided\n\n"
       << "core                     matched  unA  unB      d.run "
          "d.dma_wait d.mbox_wait d.sig_wait  d.dma_cmd d.ppe_call "
          "d.compute\n";
    for (const CoreDelta& d : r.cores) {
        std::string name;
        if (d.core_a >= 0 && d.core_b >= 0)
            name = d.label_a == d.label_b
                       ? d.label_a
                       : d.label_a + "->" + d.label_b;
        else if (d.core_a >= 0)
            name = d.label_a + " (A only)";
        else
            name = d.label_b + " (B only)";
        if (name.size() > 24)
            name.resize(24);
        os << std::left << std::setw(24) << name << std::right
           << std::setw(9) << d.matched << std::setw(5) << d.unmatched_a
           << std::setw(5) << d.unmatched_b << std::setw(11) << d.run_tb;
        for (std::size_t i = 0; i < kNumDiffBuckets; ++i)
            os << std::setw(11) << d.bucket_tb[i];
        os << "\n";
        if (d.unmatched_tb_a || d.unmatched_tb_b) {
            os << "  unmatched interval time: A " << d.unmatched_tb_a
               << " tb, B " << d.unmatched_tb_b << " tb\n";
        }
    }

    os << "\nwindows: " << r.windows_total << " x " << r.window_tb
       << " tb, " << r.windows_diverged << " diverged (threshold "
       << r.threshold_tb << ")\n";
    if (r.diverged) {
        os << "first divergence: window #" << r.first.index << " ["
           << r.first.from_tb << ", " << r.first.to_tb << ") score "
           << r.first.score << "\n";
        if (r.have_mover) {
            os << "biggest mover: " << diffBucketName(r.mover) << " ("
               << (r.mover_tb >= 0 ? "+" : "") << r.mover_tb
               << " tb total across cores)\n";
        } else {
            os << "biggest mover: none (no attributable duration "
                  "delta; timing shift only)\n";
        }
    } else {
        os << "no divergence: runs are behaviorally identical at this "
              "window width\n";
    }
    return os.str();
}

std::string
diffJson(const DiffResult& r)
{
    std::ostringstream os;
    const auto side = [&os](const char* k, std::uint64_t records,
                            std::uint64_t start, std::uint64_t span,
                            bool salvaged) {
        os << "\"" << k << "\":{\"records\":" << records
           << ",\"start_tb\":" << start << ",\"span_tb\":" << span
           << ",\"salvaged\":" << (salvaged ? "true" : "false") << "}";
    };
    os << "{";
    side("a", r.records_a, r.start_a, r.span_a, r.salvaged_a);
    os << ",";
    side("b", r.records_b, r.start_b, r.span_b, r.salvaged_b);
    os << ",\"cores\":[";
    for (std::size_t i = 0; i < r.cores.size(); ++i) {
        const CoreDelta& d = r.cores[i];
        if (i)
            os << ",";
        os << "{\"a\":" << d.core_a << ",\"b\":" << d.core_b
           << ",\"label_a\":\"";
        jsonEscape(os, d.label_a);
        os << "\",\"label_b\":\"";
        jsonEscape(os, d.label_b);
        os << "\",\"matched\":" << d.matched
           << ",\"unmatched_a\":" << d.unmatched_a
           << ",\"unmatched_b\":" << d.unmatched_b
           << ",\"unmatched_tb_a\":" << d.unmatched_tb_a
           << ",\"unmatched_tb_b\":" << d.unmatched_tb_b
           << ",\"run_tb\":" << d.run_tb << ",\"buckets\":{";
        for (std::size_t k = 0; k < kNumDiffBuckets; ++k) {
            if (k)
                os << ",";
            os << "\"" << diffBucketName(static_cast<DiffBucket>(k))
               << "\":" << d.bucket_tb[k];
        }
        os << "}}";
    }
    os << "],\"windows\":{\"width_tb\":" << r.window_tb
       << ",\"threshold\":" << r.threshold_tb
       << ",\"total\":" << r.windows_total
       << ",\"diverged\":" << r.windows_diverged << "}";
    os << ",\"first_divergence\":";
    if (r.diverged) {
        os << "{\"index\":" << r.first.index
           << ",\"from_tb\":" << r.first.from_tb
           << ",\"to_tb\":" << r.first.to_tb
           << ",\"score\":" << r.first.score << "}";
    } else {
        os << "null";
    }
    os << ",\"biggest_mover\":";
    if (r.have_mover) {
        os << "{\"bucket\":\"" << diffBucketName(r.mover)
           << "\",\"delta_tb\":" << r.mover_tb << "}";
    } else {
        os << "null";
    }
    os << ",\"diverged\":" << (r.diverged ? "true" : "false") << "}";
    return os.str();
}

} // namespace cell::ta
