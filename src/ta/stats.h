/**
 * @file
 * TA statistics: per-SPE stall breakdown, DMA transfer statistics,
 * mailbox behaviour, event counts, and tracing self-observation
 * (flush markers) — the numbers behind every view the tool prints.
 */

#ifndef CELL_TA_STATS_H
#define CELL_TA_STATS_H

#include <array>
#include <cstdint>
#include <vector>

#include "ta/intervals.h"
#include "ta/model.h"

namespace cell::ta {

/** Fixed-bucket histogram over uint64 samples. */
class Histogram
{
  public:
    /** Power-of-two buckets: [0,1), [1,2), [2,4), ... up to 2^@p bits. */
    explicit Histogram(unsigned bits = 40);

    void add(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
    }
    std::uint64_t sum() const { return sum_; }

    /** Approximate p-quantile (0..1) from bucket boundaries. */
    std::uint64_t quantile(double q) const;

    const std::vector<std::uint64_t>& buckets() const { return buckets_; }

    /** Lower bound of bucket @p i. */
    static std::uint64_t bucketLo(std::size_t i)
    {
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/** Time breakdown of one SPE, all in timebase ticks. */
struct SpuBreakdown
{
    std::uint32_t spe = 0;
    bool ran = false;
    std::uint64_t run_tb = 0;        ///< SpuStart .. SpuStop
    std::uint64_t dma_cmd_tb = 0;    ///< inside MFC enqueue calls
    std::uint64_t dma_wait_tb = 0;   ///< inside tag waits
    std::uint64_t mbox_wait_tb = 0;  ///< inside blocking mailbox calls
    std::uint64_t signal_wait_tb = 0;

    std::uint64_t stall_tb() const
    {
        return dma_wait_tb + mbox_wait_tb + signal_wait_tb;
    }
    /** Time neither stalled nor issuing DMA: compute + tracer overhead. */
    std::uint64_t busy_tb() const
    {
        const std::uint64_t other = stall_tb() + dma_cmd_tb;
        return run_tb > other ? run_tb - other : 0;
    }
    double utilization() const
    {
        return run_tb ? static_cast<double>(busy_tb()) /
                            static_cast<double>(run_tb)
                      : 0.0;
    }
};

/** DMA transfer statistics for one SPE (from its command stream). */
struct DmaStats
{
    std::uint64_t commands = 0;
    std::uint64_t bytes = 0;
    /** Command-issue to observed-completion (first covering tag-wait
     *  end), in timebase ticks. */
    Histogram latency_tb;
    /** Number of commands whose completion was never observed. */
    std::uint64_t unobserved = 0;
};

/** Tracing self-observation from flush-marker records. */
struct FlushStats
{
    std::uint64_t flushes = 0;
    std::uint64_t flushed_records = 0;
    std::uint64_t flush_wait_cycles = 0;
};

/** Event-loss accounting for one core, from drop-marker records.
 *  dropped_events sums the markers' gap counts, which the tracer keeps
 *  exact — so lossPct() is the true fraction of this core's events
 *  that never made it into the trace. */
struct CoreLoss
{
    std::uint64_t recorded_events = 0; ///< API-event records present
    std::uint64_t dropped_events = 0;  ///< Σ drop-marker gap counts
    std::uint64_t drop_markers = 0;    ///< kDropRecord count
    std::uint64_t gap_intervals = 0;   ///< intervals spanning a gap

    std::uint64_t emitted() const { return recorded_events + dropped_events; }
    double lossPct() const
    {
        return emitted() ? 100.0 * static_cast<double>(dropped_events) /
                               static_cast<double>(emitted())
                         : 0.0;
    }

    /** Field-wise equality (serial-vs-parallel differential tests). */
    bool operator==(const CoreLoss&) const = default;
};

/** One DMA command matched to its observed completion. */
struct DmaTransfer
{
    rt::ApiOp op = rt::ApiOp::SpuMfcGet;
    std::uint32_t spe = 0;
    std::uint64_t ls = 0;
    std::uint64_t ea = 0;
    std::uint32_t size = 0;   ///< bytes (list commands: list bytes)
    std::uint32_t tag = 0;
    std::uint64_t issue_tb = 0;
    /** Tag-wait end covering this tag, or 0 if never observed. */
    std::uint64_t complete_tb = 0;
    bool observed = false;

    std::uint64_t latency_tb() const
    {
        return observed ? complete_tb - issue_tb : 0;
    }
};

/** Match every DMA command on SPE @p spe to the first covering
 *  tag-wait end (the completion the *program* observed). */
std::vector<DmaTransfer> matchDmaTransfers(const IntervalSet& ivs,
                                           std::uint32_t spe);

/** Everything TA computes from one trace. */
struct TraceStats
{
    std::vector<SpuBreakdown> spu;      ///< indexed by SPE
    std::vector<DmaStats> dma;          ///< indexed by SPE
    std::vector<FlushStats> flush;      ///< indexed by SPE
    std::vector<CoreLoss> loss;         ///< indexed by core (0 = PPE)
    /** Event counts: [core][op]. */
    std::vector<std::array<std::uint64_t, rt::kNumApiOps>> op_counts;
    std::uint64_t ppe_call_tb = 0;      ///< PPE time inside runtime calls
    std::uint64_t total_records = 0;

    /** Build all statistics. */
    static TraceStats build(const TraceModel& model, const IntervalSet& ivs);

    /** Size every per-core table for @p model (before buildCore). */
    void resizeFor(const TraceModel& model);

    /** Build one core's slice of the statistics. Writes only slots
     *  owned by @p core (loss/op_counts[core], and for SPEs
     *  spu/dma/flush[core-1]; ppe_call_tb for core 0), so distinct
     *  cores may run concurrently — the parallel analyzer does.
     *  total_records is NOT touched; the caller sums it. */
    void buildCore(const TraceModel& model, const IntervalSet& ivs,
                   std::uint16_t core);

    /** Fraction of DMA service time hidden behind computation on
     *  SPE @p i: 1 - dma_wait / sum(command latencies), clamped to
     *  [0,1]. 1.0 == perfectly overlapped (e.g. double buffering). */
    double overlapScore(std::uint32_t i) const;

    /** max/mean busy-time ratio across SPEs that ran (1.0 == balanced). */
    double loadImbalance() const;

    /** True if any core lost events (a drop marker is present). */
    bool anyLoss() const
    {
        for (const CoreLoss& l : loss) {
            if (l.dropped_events > 0 || l.drop_markers > 0)
                return true;
        }
        return false;
    }
};

} // namespace cell::ta

#endif // CELL_TA_STATS_H
