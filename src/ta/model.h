/**
 * @file
 * TA trace model: raw records -> per-core event timelines on one
 * coherent global clock.
 *
 * Trace records carry raw core-local 32-bit timestamps (SPU
 * decrementer values, which count DOWN and wrap; PPE timebase low 32
 * bits, which count up and wrap). Each core's stream contains sync
 * records pinning a raw value to the full 64-bit timebase. The model
 * walks each stream, tracking the most recent sync, and rebuilds the
 * global time of every event with modulo-2^32 deltas — correct across
 * wrap-arounds as long as successive syncs are less than 2^31 apart,
 * which PDT guarantees by emitting a sync at the head of every
 * flushed buffer.
 */

#ifndef CELL_TA_MODEL_H
#define CELL_TA_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "rt/hooks.h"
#include "trace/format.h"

namespace cell::ta {

/** One event placed on the global clock. */
struct Event
{
    std::uint64_t time_tb = 0; ///< global timebase ticks
    std::uint8_t kind = 0;     ///< rt::ApiOp value or tool record kind
    std::uint8_t phase = 0;
    std::uint16_t core = 0;    ///< 0 = PPE, 1 + i = SPE i
    /** Drop epoch: incremented at every kDropRecord on this core. Two
     *  events with different epochs have a recording gap between them —
     *  the tracer lost events there, so durations spanning them are
     *  suspect. */
    std::uint32_t epoch = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t c = 0;
    std::uint32_t d = 0;

    bool isToolRecord() const { return kind >= trace::kSyncRecord; }
    /** True if kind decodes to a known runtime operation. A trace from
     *  a newer tool may carry ops this analyzer does not know; they
     *  are skipped rather than misdecoded. */
    bool isKnownOp() const { return kind < rt::kNumApiOps; }
    rt::ApiOp op() const { return static_cast<rt::ApiOp>(kind); }
    bool isBegin() const { return phase == trace::kPhaseBegin; }

    /** Field-wise equality (serial-vs-parallel differential tests). */
    bool operator==(const Event&) const = default;
};

/** All events of one core, time-ordered. */
struct CoreTimeline
{
    std::uint16_t core = 0;
    std::string label;        ///< "PPE" or "SPE3 (progname)"
    std::vector<Event> events;

    bool empty() const { return events.empty(); }
    std::uint64_t firstTime() const { return events.front().time_tb; }
    std::uint64_t lastTime() const { return events.back().time_tb; }
};

/** The reconstructed trace. */
class TraceModel
{
  public:
    /**
     * Build from a loaded trace. Strict (default): @throws
     * std::runtime_error if a core's stream has events before its
     * first sync record or a record names an impossible core. Lenient
     * (@p lenient true, for salvaged traces): such records are skipped
     * and counted in leniencySkipped() instead — a salvaged trace may
     * have lost the sync a stream's prefix depended on.
     */
    static TraceModel build(const trace::TraceData& trace,
                            bool lenient = false);

    /**
     * Assemble a model from externally-built timelines (the parallel
     * builder's merge stage). @p cores must already be in canonical
     * form: indexed by core id, labeled, and with per-core
     * non-decreasing event times — assemble only derives the global
     * start/end span.
     */
    static TraceModel assemble(const trace::Header& header,
                               std::vector<CoreTimeline>&& cores,
                               std::uint64_t leniency_skipped);

    /** Empty, labeled timelines for @p trace — the canonical shells
     *  both the serial and parallel builders fill. */
    static std::vector<CoreTimeline>
    emptyTimelines(const trace::TraceData& trace);

    const trace::Header& header() const { return header_; }

    /** Records skipped by lenient mode (0 after a strict build). */
    std::uint64_t leniencySkipped() const { return leniency_skipped_; }

    /** Timelines indexed by core id (0 = PPE, 1 + i = SPE i). */
    const std::vector<CoreTimeline>& cores() const { return cores_; }
    const CoreTimeline& ppe() const { return cores_.at(0); }
    const CoreTimeline& spe(std::uint32_t i) const { return cores_.at(i + 1); }
    std::uint32_t numSpes() const { return header_.num_spes; }

    /** Earliest / latest event time across all cores (timebase ticks). */
    std::uint64_t startTb() const { return start_tb_; }
    std::uint64_t endTb() const { return end_tb_; }
    std::uint64_t spanTb() const { return end_tb_ - start_tb_; }

    /** Convert timebase ticks to nanoseconds / microseconds. */
    double tbToNs(std::uint64_t tb) const
    {
        return static_cast<double>(tb) * header_.timebase_divider * 1e9 /
               static_cast<double>(header_.core_hz);
    }
    double tbToUs(std::uint64_t tb) const { return tbToNs(tb) / 1e3; }

    /** Timebase ticks to core-clock cycles. */
    std::uint64_t tbToCycles(std::uint64_t tb) const
    {
        return tb * header_.timebase_divider;
    }

  private:
    trace::Header header_;
    std::vector<CoreTimeline> cores_;
    std::uint64_t start_tb_ = 0;
    std::uint64_t end_tb_ = 0;
    std::uint64_t leniency_skipped_ = 0;
};

} // namespace cell::ta

#endif // CELL_TA_MODEL_H
