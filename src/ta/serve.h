/**
 * @file
 * `ta serve` — a hardened trace-query daemon.
 *
 * One long-lived analyzer process registers a corpus of trace files
 * and answers concurrent window / profile / loss / stats queries over
 * a length-prefixed Unix-domain-socket protocol (docs/SERVE.md has the
 * frame layout and the failure-mode table). The interesting part is
 * not the socket plumbing but the robustness layer:
 *
 *  - ADMISSION CONTROL: a bounded request queue sheds load with an
 *    explicit RETRY_AFTER response instead of queueing unboundedly;
 *    the client does jittered exponential backoff. Analysis threads
 *    come out of a fixed ThreadBudget (per-query cap), so a burst of
 *    queries degrades to fewer threads each, never to oversubscription.
 *  - DEADLINES: every query carries a deadline; a CancelToken polled
 *    at block/shard boundaries aborts a timed-out analysis with a
 *    typed TIMEOUT response and frees its workers mid-flight.
 *  - GRACEFUL DEGRADATION: a trace that fails strict reading is
 *    retried in salvage mode and answered with a loss warning rather
 *    than an error; a registered file that changes on disk is
 *    re-fingerprinted (never served stale — BlockCache keys carry a
 *    content fingerprint); a malformed or truncated request frame gets
 *    a BAD_REQUEST reply and costs one connection, never the daemon.
 *  - FAULT INJECTION: the deterministic counter-based injector from
 *    sim/fault.h drives ServeAccept / ServeRead / ServeWrite /
 *    ServeCachePressure sites, so torn reads, slow clients and cache
 *    thrash are reproducible under a fixed seed.
 *
 * The acceptance contract is differential: N concurrent clients
 * running the standard workloads receive byte-identical report bodies
 * to the serial CLI (`ta window` / `ta profile` / `ta loss` /
 * `ta summary`), with and without injected faults — a query either
 * succeeds identically or fails with a typed shed/timeout status,
 * never a wrong answer (tests/integration/test_serve.cc).
 */

#ifndef CELL_TA_SERVE_H
#define CELL_TA_SERVE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/fault.h"
#include "ta/query.h"

namespace cell::ta::serve {

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

/** Request frame magic, "CRQ1" on the wire (little-endian). */
constexpr std::uint32_t kRequestMagic = 0x31515243u;
/** Response frame magic, "CRS1" on the wire. */
constexpr std::uint32_t kResponseMagic = 0x31535243u;

/** Fixed request-body prefix (op..name_len), before the name bytes. */
constexpr std::size_t kRequestFixedBytes = 26;
/** Request bodies are tiny; anything larger is hostile or corrupt. */
constexpr std::size_t kMaxRequestBody = 4096;
/** Responses carry reports; cap keeps a lying server from ballooning
 *  the client (and the fuzzer from ballooning the decoder). */
constexpr std::size_t kMaxResponsePayload = 64u << 20;

enum class Op : std::uint8_t
{
    Ping = 1,    ///< liveness probe; body "pong\n"
    Window,      ///< windowReport() of [from, to) on trace `name`
    Profile,     ///< printActivity(); windowed when the flag is set
    Loss,        ///< printLossReport()
    Stats,       ///< printSummary() (the CLI's `ta summary`)
    ServerStats, ///< daemon counters (queue depth, shed, timeouts, ...)
    Shutdown,    ///< ask the daemon to stop accepting and exit
};

enum class Status : std::uint8_t
{
    Ok = 0,
    RetryAfter,   ///< shed by admission control — back off and retry
    Timeout,      ///< deadline exceeded; partial work was cancelled
    BadRequest,   ///< malformed frame or semantically invalid request
    NotFound,     ///< no trace registered under that name
    Error,        ///< query failed (strict AND salvage)
    ShuttingDown, ///< daemon is stopping; do not retry here
};

const char* opName(Op op);
const char* statusName(Status s);

struct Request
{
    Op op = Op::Ping;
    /** Client asks for salvage analysis up front (maps to --salvage). */
    bool salvage = false;
    /** Profile restricted to [from, to) (ta profile --from --to). */
    bool windowed = false;
    std::uint16_t buckets = 60;     ///< profile buckets
    std::uint32_t deadline_ms = 0;  ///< 0 = server default
    std::uint64_t from = 0;
    std::uint64_t to = ~std::uint64_t{0};
    std::string name;               ///< registered trace name

    bool operator==(const Request&) const = default;
};

struct Response
{
    Status status = Status::Ok;
    /** Human-readable degradation notes (salvage loss summary, file
     *  revalidation, ...) — the daemon's stderr equivalent. */
    std::string warning;
    /** The report body; byte-identical to the serial CLI's stdout. */
    std::string body;
};

std::vector<std::uint8_t> encodeRequest(const Request& req);
std::vector<std::uint8_t> encodeResponse(const Response& rsp);

enum class Decode
{
    Ok,       ///< one frame decoded; `consumed` bytes eaten
    NeedMore, ///< prefix is valid but incomplete
    Bad,      ///< not a frame / limits violated; connection is poisoned
};

/** Decode one request frame from data[0..len). Never throws, never
 *  reads past len, allocates at most kMaxRequestBody — the contract
 *  fuzzed by tests/ta/fuzz_serve_req.cc. */
Decode decodeRequest(const std::uint8_t* data, std::size_t len,
                     Request& out, std::size_t& consumed,
                     std::string& error);

/** Decode one response frame (client side). Same contract. */
Decode decodeResponse(const std::uint8_t* data, std::size_t len,
                      Response& out, std::size_t& consumed,
                      std::string& error);

// ---------------------------------------------------------------------------
// Admission control primitives (unit-testable without sockets)
// ---------------------------------------------------------------------------

/** Bounded MPMC job queue: tryPush sheds instead of blocking. */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(std::size_t capacity);

    /** False when the queue is full (the caller sheds the request)
     *  or closed. */
    bool tryPush(std::function<void()> job);

    /** Blocks for the next job; false once closed and drained. */
    bool pop(std::function<void()>& out);

    /** Wake every popper; pending jobs are discarded. */
    void close();

    std::size_t depth() const;
    std::size_t peakDepth() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> q_;
    std::size_t capacity_;
    std::size_t peak_ = 0;
    bool closed_ = false;
};

/** Fixed pool of analysis-thread tokens shared by all in-flight
 *  queries. Every query gets at least one; extra tokens (up to its
 *  per-query cap) are granted only when free, so load degrades to
 *  narrower queries instead of oversubscribed ones. */
class ThreadBudget
{
  public:
    explicit ThreadBudget(unsigned tokens);

    /** Acquire between 1 and @p want tokens; blocks (honouring
     *  @p cancel) until at least one is free.
     *  @throws DeadlineExceeded if the token trips while waiting. */
    unsigned acquire(unsigned want, const CancelToken* cancel);

    void release(unsigned n);

    unsigned available() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    unsigned free_;
};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct ServerConfig
{
    /** Unix-domain socket path (unlinked + rebound on start). */
    std::string socket_path;
    /** Request-executing worker threads. */
    unsigned workers = 2;
    /** Admission queue depth; a full queue sheds with RETRY_AFTER. */
    std::size_t queue_depth = 16;
    /** Total analysis-thread tokens; 0 = hardware concurrency. */
    unsigned thread_budget = 0;
    /** Max tokens one query may take. */
    unsigned per_query_threads = 2;
    /** Deadline applied when a request carries none. */
    std::uint32_t default_deadline_ms = 10'000;
    /** Hard ceiling on client-supplied deadlines. */
    std::uint32_t max_deadline_ms = 60'000;
    /** Shared block-cache capacity. */
    std::size_t cache_bytes = 64u << 20;
    /** Concurrent connections beyond this are shed at accept. */
    unsigned max_connections = 64;
    /** Serving-path fault plan (Serve* sites; fixed seed reproduces
     *  the same draw pattern). All-zero rates = no injection. */
    sim::FaultPlan faults;
};

struct ServerStatsSnapshot
{
    std::uint64_t accepted = 0;
    std::uint64_t rejected_connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t shed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t not_found = 0;
    std::uint64_t errors = 0;
    std::uint64_t salvaged = 0;
    std::uint64_t revalidated = 0;
    std::uint64_t completed = 0;
    std::uint64_t faults_injected = 0;
    std::size_t queue_depth = 0;
    std::size_t queue_peak = 0;
    std::uint64_t in_flight = 0;

    /** One key=value line per counter (the ServerStats body). */
    std::string toText() const;
};

class Server
{
  public:
    explicit Server(ServerConfig cfg);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Register (or re-register) @p name -> @p path. The file is
     *  fingerprinted lazily per query, so it may be rewritten while
     *  the daemon runs; queries see the new content, never a stale
     *  mix. Callable before or after start(). */
    void registerTrace(const std::string& name, const std::string& path);

    /** Bind the socket and launch the accept/worker threads.
     *  @throws std::runtime_error when the socket cannot be bound. */
    void start();

    /** Cooperative stop: cancels in-flight queries via their tokens,
     *  sheds queued work, joins every thread. Idempotent. */
    void stop();

    bool running() const { return running_; }

    /** Ask the serve loop to exit (signal handlers, Shutdown op). */
    void requestShutdown();
    bool shutdownRequested() const;
    /** Block until requestShutdown() (the CLI's main loop). */
    void waitShutdownRequested();

    ServerStatsSnapshot stats() const;
    const std::string& socketPath() const { return cfg_.socket_path; }

    /** Run one request through the full execution path without a
     *  socket (deterministic unit tests). */
    Response executeForTest(const Request& req) { return execute(req); }

  private:
    struct Conn;
    struct Registered
    {
        std::string path;
        std::string file_id;
    };

    void acceptLoop();
    void connLoop(std::shared_ptr<Conn> c);
    void workerLoop();
    void handleRequest(const std::shared_ptr<Conn>& c, Request req);
    Response execute(const Request& req);
    std::string runQuery(const Request& req, const std::string& path,
                         unsigned threads, const CancelToken* cancel,
                         bool salvage, std::string& warn);
    bool fireFault(sim::FaultSite site);
    void writeResponse(const std::shared_ptr<Conn>& c, const Response& r);
    void reapConnections(bool join_all);

    ServerConfig cfg_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdown_requested_{false};
    bool running_ = false;

    int listen_fd_ = -1;
    std::thread accept_thread_;
    std::vector<std::thread> workers_;

    AdmissionQueue queue_;
    ThreadBudget budget_;
    BlockCache cache_;

    mutable std::mutex fault_mu_;
    sim::FaultInjector injector_;

    mutable std::mutex conns_mu_;
    std::vector<std::shared_ptr<Conn>> conns_;

    mutable std::mutex corpus_mu_;
    std::map<std::string, Registered> corpus_;

    mutable std::mutex shutdown_mu_;
    std::condition_variable shutdown_cv_;

    // Counters (atomics: bumped from conn, worker and accept threads).
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_connections_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> timeouts_{0};
    std::atomic<std::uint64_t> bad_requests_{0};
    std::atomic<std::uint64_t> not_found_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> salvaged_{0};
    std::atomic<std::uint64_t> revalidated_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> in_flight_{0};
};

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/** Minimal client: one connection, one outstanding request, jittered
 *  exponential backoff on shed/timeout. Used by `ta query --connect`
 *  and the differential tests. Not thread-safe; one per client
 *  thread. */
struct ClientOptions
{
    /** Attempts across callWithRetry (first try included). */
    unsigned max_attempts = 8;
    std::uint32_t base_backoff_ms = 2;
    std::uint32_t max_backoff_ms = 200;
    /** Seed for the deterministic backoff jitter. */
    std::uint64_t backoff_seed = 1;
};

class Client
{
  public:
    explicit Client(std::string socket_path, ClientOptions opt = {});
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /** One attempt. @throws std::runtime_error on transport failure
     *  (cannot connect, torn frame, peer closed mid-response). */
    Response call(const Request& req);

    /** call() with reconnect-on-transport-error and jittered
     *  exponential backoff on RETRY_AFTER / TIMEOUT. Returns the
     *  first conclusive response, or the last typed shed/timeout
     *  response once attempts are exhausted. */
    Response callWithRetry(const Request& req);

  private:
    void ensureConnected();
    void closeFd();

    std::string path_;
    ClientOptions opt_;
    int fd_ = -1;
};

} // namespace cell::ta::serve

#endif // CELL_TA_SERVE_H
