/**
 * @file
 * Interval extraction: Begin/End event pairs -> typed intervals.
 *
 * The analyzer's unit of reasoning is the interval: an SPU run span, a
 * DMA command enqueue, a tag wait, a blocking mailbox access. Within a
 * core the instrumented runtime is sequential, so Begin/End pairs of
 * the same operation cannot nest and matching is a one-slot-per-op
 * affair; unterminated Begins (program killed mid-call) are closed at
 * the trace end and flagged.
 */

#ifndef CELL_TA_INTERVALS_H
#define CELL_TA_INTERVALS_H

#include <cstdint>
#include <vector>

#include "ta/model.h"
#include "trace/surgery.h"

namespace cell::ta {

/** Classification of an interval for stall accounting. */
enum class IntervalClass : std::uint8_t
{
    Run,         ///< SPU program lifetime (SpuStart .. SpuStop)
    DmaCommand,  ///< MFC command enqueue (incl. queue back-pressure)
    DmaWait,     ///< tag-status wait
    MailboxWait, ///< blocking mailbox read/write
    SignalWait,  ///< blocking signal read
    PpeCall,     ///< PPE-side runtime call (mbox, proxy, join, ...)
    Other,
};

constexpr std::size_t kNumIntervalClasses =
    static_cast<std::size_t>(IntervalClass::Other) + 1;

const char* intervalClassName(IntervalClass c);

/** A matched Begin/End pair. */
struct Interval
{
    IntervalClass cls = IntervalClass::Other;
    rt::ApiOp op = rt::ApiOp::SpuUserEvent;
    std::uint16_t core = 0;
    std::uint64_t start_tb = 0;
    std::uint64_t end_tb = 0;
    /** Payload of the Begin event (LS/EA/size/tag for DMA, mask for
     *  waits, value for mailboxes). */
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t c = 0;
    std::uint32_t d = 0;
    /** Payload b of the End event (completed mask / read value). */
    std::uint64_t end_b = 0;
    /** True if no End was found (closed at trace end). */
    bool truncated = false;
    /** True if a recording gap (drop marker) falls between Begin and
     *  End: events were lost inside this interval, so its duration may
     *  include unobserved activity. */
    bool gap = false;

    std::uint64_t duration() const { return end_tb - start_tb; }

    /** Field-wise equality (serial-vs-parallel differential tests). */
    bool operator==(const Interval&) const = default;
};

/** Intervals extracted from one trace, grouped per core. */
struct IntervalSet
{
    /** intervals[core] sorted by start time. */
    std::vector<std::vector<Interval>> per_core;

    /** Extract from a model. */
    static IntervalSet build(const TraceModel& model);

    /** All intervals of one class on one core. */
    std::vector<Interval> select(std::uint16_t core, IntervalClass cls) const;

    /** The Run interval of SPE @p index, if present. */
    const Interval* spuRun(std::uint32_t spe_index) const;
};

/** Stall classification for one operation, or Other. */
IntervalClass classifyOp(rt::ApiOp op);

/** Extract one core's intervals, sorted by start time. Cores are
 *  independent — IntervalSet::build calls this per core, and the
 *  parallel analyzer runs the same function on all cores at once. */
std::vector<Interval> buildCoreIntervals(const CoreTimeline& tl);

/** Ops the matcher keeps a pending Begin for: everything classified
 *  away from Other (Other Begins emit immediately and SpuStart /
 *  SpuStop use the dedicated run slot). Bit k = op k. */
std::uint64_t pendableOpsMask();

/** The matcher's slot semantics packaged for trace surgery: the slice
 *  preamble (trace::slice) must re-open Begins that were pending at
 *  window entry, and this is the analyzer's word on which ones pend. */
trace::OpSemantics surgeryOpSemantics();

} // namespace cell::ta

#endif // CELL_TA_INTERVALS_H
