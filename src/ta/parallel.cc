/**
 * @file
 * Parallel analysis pipeline implementation.
 *
 * The determinism argument, phase by phase:
 *
 *  - SCAN summaries are pure functions of their record range.
 *  - COMBINE folds them strictly left-to-right, so the clock state
 *    entering shard s is exactly the state the serial builder holds
 *    after record s*shard_records - 1.
 *  - EMIT replays the serial per-record loop verbatim from that state;
 *    per-(shard, core) event runs are therefore the exact slices of
 *    the serial per-core timelines.
 *  - MERGE concatenates the slices in shard order — which is stream
 *    order — and applies the same monotonic clamp, so the timelines,
 *    and everything derived from them, are identical to serial.
 *
 * Threads only ever write disjoint state (their own shard's summary /
 * event runs, their own core's timeline, intervals, or stats slots);
 * phases are separated by the pool's completion barrier.
 */

#include "ta/parallel.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "trace/shard.h"

namespace cell::ta {

// WorkerPool lives in util/worker_pool.cc now (shared with the trace
// layer's pipelined block decoder); parallel.h re-exports it.

// ---------------------------------------------------------------------------
// Scan / combine
// ---------------------------------------------------------------------------

namespace scan {

namespace {
constexpr std::uint64_t kNone = ~std::uint64_t{0};
} // namespace

RangeScan
scanRange(const trace::TraceData& trace, std::uint64_t first,
          std::uint64_t count, std::uint32_t n_cores)
{
    RangeScan rs;
    rs.cores.resize(n_cores);
    for (std::uint64_t i = first; i < first + count; ++i) {
        const trace::Record& rec = trace.records[i];
        if (rec.core >= n_cores) {
            rs.bad_core_records += 1;
            if (rs.first_bad_core_index == kNone)
                rs.first_bad_core_index = i;
            continue;
        }
        CoreScan& cs = rs.cores[rec.core];
        if (rec.kind == trace::kSyncRecord) {
            cs.saw_sync = true;
            cs.last_sync_raw = static_cast<std::uint32_t>(rec.a);
            cs.last_sync_tb = rec.b;
            continue; // the sync itself is never "before the sync"
        }
        if (rec.kind == trace::kDropRecord) {
            cs.drops_total += 1;
            if (!cs.saw_sync)
                cs.drops_before_sync += 1;
        }
        if (!cs.saw_sync) {
            cs.records_before_sync += 1;
            if (cs.first_presync_index == kNone)
                cs.first_presync_index = i;
        }
    }
    return rs;
}

void
combine(RangeScan& into, const RangeScan& next)
{
    into.bad_core_records += next.bad_core_records;
    into.first_bad_core_index =
        std::min(into.first_bad_core_index, next.first_bad_core_index);
    for (std::size_t c = 0; c < into.cores.size(); ++c) {
        CoreScan& a = into.cores[c];
        const CoreScan& b = next.cores[c];
        if (!a.saw_sync) {
            // Everything pre-sync in `next` is still pre-(first-ever)-
            // sync of the concatenation.
            a.records_before_sync += b.records_before_sync;
            a.drops_before_sync += b.drops_before_sync;
            a.first_presync_index =
                std::min(a.first_presync_index, b.first_presync_index);
            a.saw_sync = b.saw_sync;
            if (b.saw_sync) {
                a.last_sync_raw = b.last_sync_raw;
                a.last_sync_tb = b.last_sync_tb;
            }
        } else if (b.saw_sync) {
            a.last_sync_raw = b.last_sync_raw;
            a.last_sync_tb = b.last_sync_tb;
        }
        a.drops_total += b.drops_total;
    }
}

} // namespace scan

// ---------------------------------------------------------------------------
// Sharded model build
// ---------------------------------------------------------------------------

namespace {

/** Per-core replay state (mirrors the serial builder's ClockState). */
struct ClockState
{
    bool have_sync = false;
    std::uint32_t sync_raw = 0;
    std::uint64_t sync_tb = 0;
    std::uint32_t epoch = 0;
};

/** Raw 32-bit clock delta since the sync point (same as serial). */
std::uint32_t
rawDelta(bool is_spe, std::uint32_t sync_raw, std::uint32_t raw)
{
    if (is_spe)
        return sync_raw - raw; // down-counter
    return raw - sync_raw;     // up-counter
}

/** Clock state after the records summarized by @p prefix. */
std::vector<ClockState>
clockStatesFrom(const scan::RangeScan& prefix)
{
    std::vector<ClockState> states(prefix.cores.size());
    for (std::size_t c = 0; c < states.size(); ++c) {
        const scan::CoreScan& cs = prefix.cores[c];
        ClockState& st = states[c];
        st.have_sync = cs.saw_sync;
        st.sync_raw = cs.last_sync_raw;
        st.sync_tb = cs.last_sync_tb;
        // Only drops after the first-ever sync bump the epoch.
        st.epoch =
            static_cast<std::uint32_t>(cs.drops_total - cs.drops_before_sync);
    }
    return states;
}

/** Replay records [first, first+count) from @p entry — the serial
 *  per-record loop verbatim — into per-core event runs. */
std::vector<std::vector<Event>>
emitRange(const trace::TraceData& trace, std::uint64_t first,
          std::uint64_t count, const std::vector<ClockState>& entry)
{
    const auto n_cores = static_cast<std::uint32_t>(entry.size());
    std::vector<std::vector<Event>> out(n_cores);
    std::vector<ClockState> clocks = entry;
    for (std::uint64_t i = first; i < first + count; ++i) {
        const trace::Record& rec = trace.records[i];
        if (rec.core >= n_cores)
            continue; // accounted in phase 2 (or thrown, strict)
        ClockState& clk = clocks[rec.core];
        const bool is_spe = rec.core != 0;
        if (rec.kind == trace::kSyncRecord) {
            clk.have_sync = true;
            clk.sync_raw = static_cast<std::uint32_t>(rec.a);
            clk.sync_tb = rec.b;
        }
        if (!clk.have_sync)
            continue; // accounted in phase 2 (or thrown, strict)
        if (rec.kind == trace::kDropRecord)
            clk.epoch += 1;

        Event ev;
        ev.kind = rec.kind;
        ev.phase = rec.phase;
        ev.core = rec.core;
        ev.epoch = clk.epoch;
        ev.a = rec.a;
        ev.b = rec.b;
        ev.c = rec.c;
        ev.d = rec.d;
        ev.time_tb =
            clk.sync_tb + rawDelta(is_spe, clk.sync_raw, rec.timestamp);
        out[rec.core].push_back(ev);
    }
    return out;
}

unsigned
resolveThreads(unsigned threads)
{
    return threads != 0 ? threads
                        : std::max(1u, std::thread::hardware_concurrency());
}

} // namespace

TraceModel
buildModelParallel(const trace::TraceData& trace, WorkerPool& pool,
                   bool lenient, std::uint64_t shard_records,
                   const CancelToken* cancel)
{
    constexpr std::uint64_t kNone = ~std::uint64_t{0};
    const std::uint32_t n_cores = trace.header.num_spes + 1;
    const std::uint64_t n = trace.records.size();
    if (shard_records == 0) {
        const std::uint64_t target = std::uint64_t{pool.threads()} * 8;
        shard_records = std::max<std::uint64_t>(4096, (n + target - 1) /
                                                          std::max<std::uint64_t>(target, 1));
    }
    const std::uint64_t n_shards =
        n == 0 ? 0 : (n + shard_records - 1) / shard_records;

    // Phase 1: scan every shard into its per-core summary.
    std::vector<scan::RangeScan> scans(n_shards);
    pool.parallelFor(n_shards, [&](std::uint64_t s) {
        if (cancel)
            cancel->checkpoint("buildModelParallel/scan");
        const std::uint64_t first = s * shard_records;
        scans[s] = scan::scanRange(trace, first,
                                   std::min(shard_records, n - first),
                                   n_cores);
    });

    // Phase 2: fold summaries left to right; record the exact clock
    // state entering each shard.
    std::vector<std::vector<ClockState>> entry(n_shards);
    scan::RangeScan prefix;
    prefix.cores.resize(n_cores);
    for (std::uint64_t s = 0; s < n_shards; ++s) {
        entry[s] = clockStatesFrom(prefix);
        scan::combine(prefix, scans[s]);
    }

    std::uint64_t leniency = 0;
    if (lenient) {
        leniency = prefix.bad_core_records;
        for (const scan::CoreScan& cs : prefix.cores)
            leniency += cs.records_before_sync;
    } else {
        // Strict mode: fail on the earliest offender, with the same
        // diagnostics the serial builder raises.
        std::uint64_t presync_idx = kNone;
        std::uint16_t presync_core = 0;
        for (std::size_t c = 0; c < prefix.cores.size(); ++c) {
            if (prefix.cores[c].first_presync_index < presync_idx) {
                presync_idx = prefix.cores[c].first_presync_index;
                presync_core = static_cast<std::uint16_t>(c);
            }
        }
        const std::uint64_t bad_idx = prefix.first_bad_core_index;
        if (bad_idx != kNone || presync_idx != kNone) {
            if (bad_idx < presync_idx)
                throw std::runtime_error(
                    "TraceModel: record with bad core id");
            throw std::runtime_error(
                "TraceModel: event before first sync record on core " +
                std::to_string(presync_core));
        }
    }

    // Phase 3: emit per-shard, per-core event runs.
    std::vector<std::vector<std::vector<Event>>> emitted(n_shards);
    pool.parallelFor(n_shards, [&](std::uint64_t s) {
        if (cancel)
            cancel->checkpoint("buildModelParallel/emit");
        const std::uint64_t first = s * shard_records;
        emitted[s] = emitRange(trace, first, std::min(shard_records, n - first),
                               entry[s]);
    });

    // Phase 4: merge in canonical (core, shard) order + monotonic
    // clamp — shard order is stream order, so each core's event
    // sequence equals the serial builder's.
    std::vector<CoreTimeline> cores = TraceModel::emptyTimelines(trace);
    pool.parallelFor(n_cores, [&](std::uint64_t c) {
        auto& events = cores[c].events;
        std::size_t total = 0;
        for (std::uint64_t s = 0; s < n_shards; ++s)
            total += emitted[s][c].size();
        events.reserve(total);
        for (std::uint64_t s = 0; s < n_shards; ++s)
            events.insert(events.end(), emitted[s][c].begin(),
                          emitted[s][c].end());
        std::uint64_t prev = 0;
        for (Event& ev : events) {
            if (ev.time_tb < prev)
                ev.time_tb = prev;
            prev = ev.time_tb;
        }
    });
    return TraceModel::assemble(trace.header, std::move(cores), leniency);
}

IntervalSet
buildIntervalsParallel(const TraceModel& model, WorkerPool& pool,
                       const CancelToken* cancel)
{
    IntervalSet out;
    out.per_core.resize(model.cores().size());
    pool.parallelFor(model.cores().size(), [&](std::uint64_t c) {
        if (cancel)
            cancel->checkpoint("buildIntervalsParallel");
        out.per_core[c] = buildCoreIntervals(model.cores()[c]);
    });
    return out;
}

TraceStats
buildStatsParallel(const TraceModel& model, const IntervalSet& ivs,
                   WorkerPool& pool, const CancelToken* cancel)
{
    TraceStats st;
    st.resizeFor(model);
    pool.parallelFor(model.cores().size(), [&](std::uint64_t c) {
        if (cancel)
            cancel->checkpoint("buildStatsParallel");
        st.buildCore(model, ivs, static_cast<std::uint16_t>(c));
    });
    for (const CoreTimeline& tl : model.cores())
        st.total_records += tl.events.size();
    return st;
}

Analysis
analyzeParallel(const trace::TraceData& trace, WorkerPool& pool,
                bool lenient, std::uint64_t shard_records,
                const CancelToken* cancel)
{
    Analysis a{
        buildModelParallel(trace, pool, lenient, shard_records, cancel),
        {},
        {}};
    a.intervals = buildIntervalsParallel(a.model, pool, cancel);
    a.stats = buildStatsParallel(a.model, a.intervals, pool, cancel);
    return a;
}

Analysis
analyzeParallel(const trace::TraceData& trace, const ParallelOptions& opt,
                bool lenient)
{
    const unsigned threads = resolveThreads(opt.threads);
    if (threads <= 1 && !opt.cancel)
        return analyze(trace, lenient); // legacy serial path
    // With a cancel token, even one thread runs the (output-identical)
    // pipeline so the per-shard checkpoints can abort it.
    WorkerPool pool(threads);
    return analyzeParallel(trace, pool, lenient, opt.shard_records,
                           opt.cancel);
}

Analysis
analyzeFileParallel(const std::string& path, const ParallelOptions& opt)
{
    const unsigned threads = resolveThreads(opt.threads);
    if (threads <= 1 && !opt.cancel)
        return analyzeFile(path); // legacy serial path
    const CancelToken* cancel = opt.cancel;

    trace::ShardOptions sopt;
    sopt.target_shards = threads * 4;
    const trace::ShardPlan plan = trace::planShardsFile(path, sopt);

    trace::TraceData data;
    data.header = plan.header;
    data.spe_programs = plan.spe_programs;
    data.records.resize(static_cast<std::size_t>(plan.record_count));

    WorkerPool pool(threads);
    pool.parallelFor(plan.shards.size(), [&](std::uint64_t s) {
        if (cancel)
            cancel->checkpoint("analyzeFileParallel/ingest");
        std::ifstream is(path, std::ios::binary);
        if (!is)
            throw std::runtime_error("analyzeFileParallel: cannot open " +
                                     path);
        trace::readShardInto(is, plan, static_cast<std::size_t>(s),
                             data.records.data() +
                                 plan.shards[s].first_record);
    });
    return analyzeParallel(data, pool, /*lenient=*/false, opt.shard_records,
                           cancel);
}

Analysis
analyzeFileSalvageParallel(const std::string& path, trace::ReadReport& report,
                           const ParallelOptions& opt)
{
    const unsigned threads = resolveThreads(opt.threads);
    if (threads <= 1 && !opt.cancel)
        return analyzeFileSalvage(path, report);
    // Salvage resync is inherently sequential (it must walk the damage
    // to find the stride again), so the read stays serial; the
    // recovered subset is analyzed in parallel, leniently. The token is
    // polled before and after the read, then per shard in the analysis.
    if (opt.cancel)
        opt.cancel->checkpoint("analyzeFileSalvageParallel/read");
    const trace::TraceData data = trace::readFileSalvage(path, report);
    ParallelOptions o = opt;
    o.threads = threads;
    return analyzeParallel(data, o, /*lenient=*/true);
}

} // namespace cell::ta
