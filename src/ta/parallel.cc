/**
 * @file
 * Parallel analysis pipeline implementation.
 *
 * The determinism argument, phase by phase:
 *
 *  - SCAN summaries are pure functions of their record range.
 *  - COMBINE folds them strictly left-to-right, so the clock state
 *    entering shard s is exactly the state the serial builder holds
 *    after record s*shard_records - 1.
 *  - EMIT replays the serial per-record loop verbatim from that state;
 *    per-(shard, core) event runs are therefore the exact slices of
 *    the serial per-core timelines.
 *  - MERGE concatenates the slices in shard order — which is stream
 *    order — and applies the same monotonic clamp, so the timelines,
 *    and everything derived from them, are identical to serial.
 *
 * Threads only ever write disjoint state (their own shard's summary /
 * event runs, their own core's timeline, intervals, or stats slots);
 * phases are separated by the pool's completion barrier.
 */

#include "ta/parallel.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "trace/shard.h"

namespace cell::ta {

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

WorkerPool::WorkerPool(unsigned threads)
    : n_threads_(threads != 0
                     ? threads
                     : std::max(1u, std::thread::hardware_concurrency())),
      ranges_(n_threads_)
{
    workers_.reserve(n_threads_ - 1);
    for (unsigned i = 1; i < n_threads_; ++i)
        workers_.emplace_back(&WorkerPool::workerMain, this, i);
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void
WorkerPool::execute(std::uint64_t index)
{
    const auto* fn = job_.load(std::memory_order_acquire);
    try {
        (*fn)(index);
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!first_error_)
            first_error_ = std::current_exception();
    }
    const std::uint64_t done =
        items_done_.fetch_add(1, std::memory_order_acq_rel) + 1;
    assert(done <= items_total_.load(std::memory_order_acquire) &&
           "WorkerPool executed an index twice");
    if (done >= items_total_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lk(mu_); // pair with the caller's wait
        done_cv_.notify_all();
    }
}

bool
WorkerPool::runOne(unsigned self)
{
    // Pop the front of our own range.
    auto& my = ranges_[self].bits;
    std::uint64_t cur = my.load(std::memory_order_acquire);
    for (;;) {
        const auto b = static_cast<std::uint32_t>(cur >> 32);
        const auto e = static_cast<std::uint32_t>(cur);
        if (b >= e)
            break;
        if (my.compare_exchange_weak(cur, pack(b + 1, e),
                                     std::memory_order_acq_rel)) {
            execute(b);
            return true;
        }
    }
    // Dry: steal the upper half of the largest remaining range. Within
    // a job only the owner ever grows its own range (and only while it
    // is empty), and thieves only CAS-shrink non-empty ranges, so the
    // blind store below cannot clobber a concurrent transfer; the
    // caller refills ranges only while the pool is quiescent.
    for (;;) {
        int victim = -1;
        std::uint32_t best = 0;
        std::uint64_t vcur = 0;
        for (unsigned v = 0; v < n_threads_; ++v) {
            if (v == self)
                continue;
            const std::uint64_t c =
                ranges_[v].bits.load(std::memory_order_acquire);
            const auto b = static_cast<std::uint32_t>(c >> 32);
            const auto e = static_cast<std::uint32_t>(c);
            // A single-item range has no upper half to take (mid would
            // equal e, an index outside the range); its owner runs it.
            if (e - b >= 2 && e - b > best) {
                best = e - b;
                victim = static_cast<int>(v);
                vcur = c;
            }
        }
        if (victim < 0)
            return false;
        const auto b = static_cast<std::uint32_t>(vcur >> 32);
        const auto e = static_cast<std::uint32_t>(vcur);
        const std::uint32_t mid = b + (e - b + 1) / 2; // victim keeps [b,mid)
        if (!ranges_[static_cast<unsigned>(victim)].bits.compare_exchange_weak(
                vcur, pack(b, mid), std::memory_order_acq_rel))
            continue; // raced with the victim or another thief; rescan
        ranges_[self].bits.store(pack(mid + 1, e), std::memory_order_release);
        execute(mid);
        return true;
    }
}

void
WorkerPool::workerMain(unsigned id)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        wake_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_)
            return;
        seen = generation_;
        ++active_;
        lk.unlock();
        while (runOne(id)) {
        }
        lk.lock();
        // The last worker to park lets the next parallelFor refill the
        // steal ranges: a worker still inside runOne() could hold a
        // stale snapshot of a range and, because range layouts repeat
        // across generations, CAS-steal from the *next* job and clobber
        // its own freshly refilled range. Quiescence makes that window
        // impossible.
        if (--active_ == 0)
            idle_cv_.notify_all();
    }
}

void
WorkerPool::parallelFor(std::uint64_t n,
                        const std::function<void(std::uint64_t)>& fn)
{
    if (n == 0)
        return;
    if (n_threads_ == 1 || n == 1) {
        for (std::uint64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    if (n > std::numeric_limits<std::uint32_t>::max())
        throw std::logic_error("WorkerPool: index space too large");

    {
        std::unique_lock<std::mutex> lk(mu_);
        // Wait for every worker from the previous job to park before
        // touching the ranges (see the note in workerMain).
        idle_cv_.wait(lk, [&] { return active_ == 0; });
        first_error_ = nullptr;
        items_done_.store(0, std::memory_order_relaxed);
        items_total_.store(n, std::memory_order_relaxed);
        job_.store(&fn, std::memory_order_release);
        const std::uint64_t per = n / n_threads_;
        const std::uint64_t rem = n % n_threads_;
        std::uint64_t begin = 0;
        for (unsigned w = 0; w < n_threads_; ++w) {
            const std::uint64_t len = per + (w < rem ? 1 : 0);
            ranges_[w].bits.store(
                pack(static_cast<std::uint32_t>(begin),
                     static_cast<std::uint32_t>(begin + len)),
                std::memory_order_release);
            begin += len;
        }
        ++generation_;
    }
    wake_cv_.notify_all();
    while (runOne(0)) {
    }
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(mu_);
        done_cv_.wait(lk, [&] {
            return items_done_.load(std::memory_order_acquire) >=
                   items_total_.load(std::memory_order_relaxed);
        });
        job_.store(nullptr, std::memory_order_relaxed);
        err = first_error_;
        first_error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

// ---------------------------------------------------------------------------
// Scan / combine
// ---------------------------------------------------------------------------

namespace scan {

namespace {
constexpr std::uint64_t kNone = ~std::uint64_t{0};
} // namespace

RangeScan
scanRange(const trace::TraceData& trace, std::uint64_t first,
          std::uint64_t count, std::uint32_t n_cores)
{
    RangeScan rs;
    rs.cores.resize(n_cores);
    for (std::uint64_t i = first; i < first + count; ++i) {
        const trace::Record& rec = trace.records[i];
        if (rec.core >= n_cores) {
            rs.bad_core_records += 1;
            if (rs.first_bad_core_index == kNone)
                rs.first_bad_core_index = i;
            continue;
        }
        CoreScan& cs = rs.cores[rec.core];
        if (rec.kind == trace::kSyncRecord) {
            cs.saw_sync = true;
            cs.last_sync_raw = static_cast<std::uint32_t>(rec.a);
            cs.last_sync_tb = rec.b;
            continue; // the sync itself is never "before the sync"
        }
        if (rec.kind == trace::kDropRecord) {
            cs.drops_total += 1;
            if (!cs.saw_sync)
                cs.drops_before_sync += 1;
        }
        if (!cs.saw_sync) {
            cs.records_before_sync += 1;
            if (cs.first_presync_index == kNone)
                cs.first_presync_index = i;
        }
    }
    return rs;
}

void
combine(RangeScan& into, const RangeScan& next)
{
    into.bad_core_records += next.bad_core_records;
    into.first_bad_core_index =
        std::min(into.first_bad_core_index, next.first_bad_core_index);
    for (std::size_t c = 0; c < into.cores.size(); ++c) {
        CoreScan& a = into.cores[c];
        const CoreScan& b = next.cores[c];
        if (!a.saw_sync) {
            // Everything pre-sync in `next` is still pre-(first-ever)-
            // sync of the concatenation.
            a.records_before_sync += b.records_before_sync;
            a.drops_before_sync += b.drops_before_sync;
            a.first_presync_index =
                std::min(a.first_presync_index, b.first_presync_index);
            a.saw_sync = b.saw_sync;
            if (b.saw_sync) {
                a.last_sync_raw = b.last_sync_raw;
                a.last_sync_tb = b.last_sync_tb;
            }
        } else if (b.saw_sync) {
            a.last_sync_raw = b.last_sync_raw;
            a.last_sync_tb = b.last_sync_tb;
        }
        a.drops_total += b.drops_total;
    }
}

} // namespace scan

// ---------------------------------------------------------------------------
// Sharded model build
// ---------------------------------------------------------------------------

namespace {

/** Per-core replay state (mirrors the serial builder's ClockState). */
struct ClockState
{
    bool have_sync = false;
    std::uint32_t sync_raw = 0;
    std::uint64_t sync_tb = 0;
    std::uint32_t epoch = 0;
};

/** Raw 32-bit clock delta since the sync point (same as serial). */
std::uint32_t
rawDelta(bool is_spe, std::uint32_t sync_raw, std::uint32_t raw)
{
    if (is_spe)
        return sync_raw - raw; // down-counter
    return raw - sync_raw;     // up-counter
}

/** Clock state after the records summarized by @p prefix. */
std::vector<ClockState>
clockStatesFrom(const scan::RangeScan& prefix)
{
    std::vector<ClockState> states(prefix.cores.size());
    for (std::size_t c = 0; c < states.size(); ++c) {
        const scan::CoreScan& cs = prefix.cores[c];
        ClockState& st = states[c];
        st.have_sync = cs.saw_sync;
        st.sync_raw = cs.last_sync_raw;
        st.sync_tb = cs.last_sync_tb;
        // Only drops after the first-ever sync bump the epoch.
        st.epoch =
            static_cast<std::uint32_t>(cs.drops_total - cs.drops_before_sync);
    }
    return states;
}

/** Replay records [first, first+count) from @p entry — the serial
 *  per-record loop verbatim — into per-core event runs. */
std::vector<std::vector<Event>>
emitRange(const trace::TraceData& trace, std::uint64_t first,
          std::uint64_t count, const std::vector<ClockState>& entry)
{
    const auto n_cores = static_cast<std::uint32_t>(entry.size());
    std::vector<std::vector<Event>> out(n_cores);
    std::vector<ClockState> clocks = entry;
    for (std::uint64_t i = first; i < first + count; ++i) {
        const trace::Record& rec = trace.records[i];
        if (rec.core >= n_cores)
            continue; // accounted in phase 2 (or thrown, strict)
        ClockState& clk = clocks[rec.core];
        const bool is_spe = rec.core != 0;
        if (rec.kind == trace::kSyncRecord) {
            clk.have_sync = true;
            clk.sync_raw = static_cast<std::uint32_t>(rec.a);
            clk.sync_tb = rec.b;
        }
        if (!clk.have_sync)
            continue; // accounted in phase 2 (or thrown, strict)
        if (rec.kind == trace::kDropRecord)
            clk.epoch += 1;

        Event ev;
        ev.kind = rec.kind;
        ev.phase = rec.phase;
        ev.core = rec.core;
        ev.epoch = clk.epoch;
        ev.a = rec.a;
        ev.b = rec.b;
        ev.c = rec.c;
        ev.d = rec.d;
        ev.time_tb =
            clk.sync_tb + rawDelta(is_spe, clk.sync_raw, rec.timestamp);
        out[rec.core].push_back(ev);
    }
    return out;
}

unsigned
resolveThreads(unsigned threads)
{
    return threads != 0 ? threads
                        : std::max(1u, std::thread::hardware_concurrency());
}

} // namespace

TraceModel
buildModelParallel(const trace::TraceData& trace, WorkerPool& pool,
                   bool lenient, std::uint64_t shard_records,
                   const CancelToken* cancel)
{
    constexpr std::uint64_t kNone = ~std::uint64_t{0};
    const std::uint32_t n_cores = trace.header.num_spes + 1;
    const std::uint64_t n = trace.records.size();
    if (shard_records == 0) {
        const std::uint64_t target = std::uint64_t{pool.threads()} * 8;
        shard_records = std::max<std::uint64_t>(4096, (n + target - 1) /
                                                          std::max<std::uint64_t>(target, 1));
    }
    const std::uint64_t n_shards =
        n == 0 ? 0 : (n + shard_records - 1) / shard_records;

    // Phase 1: scan every shard into its per-core summary.
    std::vector<scan::RangeScan> scans(n_shards);
    pool.parallelFor(n_shards, [&](std::uint64_t s) {
        if (cancel)
            cancel->checkpoint("buildModelParallel/scan");
        const std::uint64_t first = s * shard_records;
        scans[s] = scan::scanRange(trace, first,
                                   std::min(shard_records, n - first),
                                   n_cores);
    });

    // Phase 2: fold summaries left to right; record the exact clock
    // state entering each shard.
    std::vector<std::vector<ClockState>> entry(n_shards);
    scan::RangeScan prefix;
    prefix.cores.resize(n_cores);
    for (std::uint64_t s = 0; s < n_shards; ++s) {
        entry[s] = clockStatesFrom(prefix);
        scan::combine(prefix, scans[s]);
    }

    std::uint64_t leniency = 0;
    if (lenient) {
        leniency = prefix.bad_core_records;
        for (const scan::CoreScan& cs : prefix.cores)
            leniency += cs.records_before_sync;
    } else {
        // Strict mode: fail on the earliest offender, with the same
        // diagnostics the serial builder raises.
        std::uint64_t presync_idx = kNone;
        std::uint16_t presync_core = 0;
        for (std::size_t c = 0; c < prefix.cores.size(); ++c) {
            if (prefix.cores[c].first_presync_index < presync_idx) {
                presync_idx = prefix.cores[c].first_presync_index;
                presync_core = static_cast<std::uint16_t>(c);
            }
        }
        const std::uint64_t bad_idx = prefix.first_bad_core_index;
        if (bad_idx != kNone || presync_idx != kNone) {
            if (bad_idx < presync_idx)
                throw std::runtime_error(
                    "TraceModel: record with bad core id");
            throw std::runtime_error(
                "TraceModel: event before first sync record on core " +
                std::to_string(presync_core));
        }
    }

    // Phase 3: emit per-shard, per-core event runs.
    std::vector<std::vector<std::vector<Event>>> emitted(n_shards);
    pool.parallelFor(n_shards, [&](std::uint64_t s) {
        if (cancel)
            cancel->checkpoint("buildModelParallel/emit");
        const std::uint64_t first = s * shard_records;
        emitted[s] = emitRange(trace, first, std::min(shard_records, n - first),
                               entry[s]);
    });

    // Phase 4: merge in canonical (core, shard) order + monotonic
    // clamp — shard order is stream order, so each core's event
    // sequence equals the serial builder's.
    std::vector<CoreTimeline> cores = TraceModel::emptyTimelines(trace);
    pool.parallelFor(n_cores, [&](std::uint64_t c) {
        auto& events = cores[c].events;
        std::size_t total = 0;
        for (std::uint64_t s = 0; s < n_shards; ++s)
            total += emitted[s][c].size();
        events.reserve(total);
        for (std::uint64_t s = 0; s < n_shards; ++s)
            events.insert(events.end(), emitted[s][c].begin(),
                          emitted[s][c].end());
        std::uint64_t prev = 0;
        for (Event& ev : events) {
            if (ev.time_tb < prev)
                ev.time_tb = prev;
            prev = ev.time_tb;
        }
    });
    return TraceModel::assemble(trace.header, std::move(cores), leniency);
}

IntervalSet
buildIntervalsParallel(const TraceModel& model, WorkerPool& pool,
                       const CancelToken* cancel)
{
    IntervalSet out;
    out.per_core.resize(model.cores().size());
    pool.parallelFor(model.cores().size(), [&](std::uint64_t c) {
        if (cancel)
            cancel->checkpoint("buildIntervalsParallel");
        out.per_core[c] = buildCoreIntervals(model.cores()[c]);
    });
    return out;
}

TraceStats
buildStatsParallel(const TraceModel& model, const IntervalSet& ivs,
                   WorkerPool& pool, const CancelToken* cancel)
{
    TraceStats st;
    st.resizeFor(model);
    pool.parallelFor(model.cores().size(), [&](std::uint64_t c) {
        if (cancel)
            cancel->checkpoint("buildStatsParallel");
        st.buildCore(model, ivs, static_cast<std::uint16_t>(c));
    });
    for (const CoreTimeline& tl : model.cores())
        st.total_records += tl.events.size();
    return st;
}

Analysis
analyzeParallel(const trace::TraceData& trace, WorkerPool& pool,
                bool lenient, std::uint64_t shard_records,
                const CancelToken* cancel)
{
    Analysis a{
        buildModelParallel(trace, pool, lenient, shard_records, cancel),
        {},
        {}};
    a.intervals = buildIntervalsParallel(a.model, pool, cancel);
    a.stats = buildStatsParallel(a.model, a.intervals, pool, cancel);
    return a;
}

Analysis
analyzeParallel(const trace::TraceData& trace, const ParallelOptions& opt,
                bool lenient)
{
    const unsigned threads = resolveThreads(opt.threads);
    if (threads <= 1 && !opt.cancel)
        return analyze(trace, lenient); // legacy serial path
    // With a cancel token, even one thread runs the (output-identical)
    // pipeline so the per-shard checkpoints can abort it.
    WorkerPool pool(threads);
    return analyzeParallel(trace, pool, lenient, opt.shard_records,
                           opt.cancel);
}

Analysis
analyzeFileParallel(const std::string& path, const ParallelOptions& opt)
{
    const unsigned threads = resolveThreads(opt.threads);
    if (threads <= 1 && !opt.cancel)
        return analyzeFile(path); // legacy serial path
    const CancelToken* cancel = opt.cancel;

    trace::ShardOptions sopt;
    sopt.target_shards = threads * 4;
    const trace::ShardPlan plan = trace::planShardsFile(path, sopt);

    trace::TraceData data;
    data.header = plan.header;
    data.spe_programs = plan.spe_programs;
    data.records.resize(static_cast<std::size_t>(plan.record_count));

    WorkerPool pool(threads);
    pool.parallelFor(plan.shards.size(), [&](std::uint64_t s) {
        if (cancel)
            cancel->checkpoint("analyzeFileParallel/ingest");
        std::ifstream is(path, std::ios::binary);
        if (!is)
            throw std::runtime_error("analyzeFileParallel: cannot open " +
                                     path);
        trace::readShardInto(is, plan, static_cast<std::size_t>(s),
                             data.records.data() +
                                 plan.shards[s].first_record);
    });
    return analyzeParallel(data, pool, /*lenient=*/false, opt.shard_records,
                           cancel);
}

Analysis
analyzeFileSalvageParallel(const std::string& path, trace::ReadReport& report,
                           const ParallelOptions& opt)
{
    const unsigned threads = resolveThreads(opt.threads);
    if (threads <= 1 && !opt.cancel)
        return analyzeFileSalvage(path, report);
    // Salvage resync is inherently sequential (it must walk the damage
    // to find the stride again), so the read stays serial; the
    // recovered subset is analyzed in parallel, leniently. The token is
    // polled before and after the read, then per shard in the analysis.
    if (opt.cancel)
        opt.cancel->checkpoint("analyzeFileSalvageParallel/read");
    const trace::TraceData data = trace::readFileSalvage(path, report);
    ParallelOptions o = opt;
    o.threads = threads;
    return analyzeParallel(data, o, /*lenient=*/true);
}

} // namespace cell::ta
