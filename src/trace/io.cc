/**
 * @file
 * Trace reader/writer implementation.
 *
 * Layout: Header, then per SPE {u32 length, bytes} program names, then
 * header.record_count fixed 32-byte records.
 *
 * Buffer-based I/O (writeBuffer/readBuffer) serializes directly
 * to/from the byte vector — no stringstream detour, no intermediate
 * string copy. Stream-based read() sizes the record array in one step
 * when the stream is seekable, after validating the untrusted record
 * count against the bytes actually remaining; only non-seekable
 * streams fall back to bounded chunked reads.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "trace/block.h"
#include "trace/index.h"
#include "trace/mmap.h"
#include "trace/reader.h"
#include "trace/writer.h"

namespace cell::trace {

namespace {

/** The header as it should appear on disk for @p trace. */
Header
headerFor(const TraceData& trace, const WriteOptions& opt)
{
    Header hdr = trace.header;
    hdr.magic = kMagic;
    hdr.version = opt.compress ? kFormatVersionV3 : kFormatVersion;
    hdr.num_spes = static_cast<std::uint32_t>(trace.spe_programs.size());
    hdr.record_count = trace.records.size();
    return hdr;
}

/** Sequential reader over an in-memory byte range. */
class BufReader
{
  public:
    BufReader(const std::uint8_t* begin, std::size_t len)
        : p_(begin), end_(begin + len)
    {}

    void read(void* dst, std::size_t n)
    {
        if (n > remaining()) {
            throw std::runtime_error(
                "trace::read: truncated input at byte " +
                std::to_string(consumed_) + " (need " + std::to_string(n) +
                " bytes, " + std::to_string(remaining()) + " left)");
        }
        std::memcpy(dst, p_, n);
        p_ += n;
        consumed_ += n;
    }

    /** Best-effort read for salvage slurps: up to @p n bytes. */
    std::size_t readSome(void* dst, std::size_t n)
    {
        const std::size_t m =
            std::min<std::size_t>(n, static_cast<std::size_t>(remaining()));
        std::memcpy(dst, p_, m);
        p_ += m;
        consumed_ += m;
        return m;
    }

    /** Zero-copy view of the next @p n bytes, advancing past them, or
     *  nullptr when fewer remain (the caller's read() fallback then
     *  reports the truncation with the standard message). */
    const std::uint8_t* tryView(std::size_t n)
    {
        if (n > remaining())
            return nullptr;
        const std::uint8_t* p = p_;
        p_ += n;
        consumed_ += n;
        return p;
    }

    /** Exact; an in-memory buffer always knows its size. */
    bool knowsRemaining() const { return true; }
    std::uint64_t remaining() const
    {
        return static_cast<std::uint64_t>(end_ - p_);
    }
    std::uint64_t consumed() const { return consumed_; }

  private:
    const std::uint8_t* p_;
    const std::uint8_t* end_;
    std::uint64_t consumed_ = 0;
};

/** Sequential reader over an istream; remaining() needs seekability. */
class StreamReader
{
  public:
    explicit StreamReader(std::istream& is) : is_(is)
    {
        // Probe seekability once: tellg()/seekg() fail harmlessly on
        // pipes. Clear the state afterwards so reads still work.
        const auto pos = is_.tellg();
        if (pos != std::streampos(-1)) {
            is_.seekg(0, std::ios::end);
            const auto end = is_.tellg();
            is_.seekg(pos);
            if (end != std::streampos(-1) && is_) {
                knows_remaining_ = true;
                remaining_ = static_cast<std::uint64_t>(end - pos);
            }
        }
        is_.clear();
    }

    void read(void* dst, std::size_t n)
    {
        is_.read(reinterpret_cast<char*>(dst),
                 static_cast<std::streamsize>(n));
        const auto got = static_cast<std::size_t>(is_.gcount());
        if (!is_ || got != n) {
            throw std::runtime_error(
                "trace::read: truncated input at byte " +
                std::to_string(consumed_ + got) + " (need " +
                std::to_string(n - got) + " more bytes)");
        }
        consumed_ += n;
        if (knows_remaining_)
            remaining_ -= n;
    }

    /** Best-effort read for salvage slurps: up to @p n bytes. */
    std::size_t readSome(void* dst, std::size_t n)
    {
        is_.read(reinterpret_cast<char*>(dst),
                 static_cast<std::streamsize>(n));
        const auto got = static_cast<std::size_t>(is_.gcount());
        is_.clear();
        consumed_ += got;
        if (knows_remaining_)
            remaining_ -= std::min<std::uint64_t>(remaining_, got);
        return got;
    }

    /** Streams have no stable bytes to point at. */
    const std::uint8_t* tryView(std::size_t) { return nullptr; }

    bool knowsRemaining() const { return knows_remaining_; }
    std::uint64_t remaining() const { return remaining_; }
    std::uint64_t consumed() const { return consumed_; }

  private:
    std::istream& is_;
    bool knows_remaining_ = false;
    std::uint64_t remaining_ = 0;
    std::uint64_t consumed_ = 0;
};

/**
 * Strict decode of a v3 block region: one block body in memory at a
 * time (the scratch buffer is bounded by maxBlockBodyBytes), each
 * block's checksum and structural claims verified, blocks required to
 * tile [0, record_count) exactly. Trailing bytes — the directory and
 * any v2 index footer — are ignored, mirroring how the v1 strict
 * reader ignores everything past the claimed records.
 */
template <typename Reader>
void
readBlocksStrict(Reader& in, TraceData& trace)
{
    BlockRegionHeader rh;
    in.read(&rh, sizeof(rh));
    if (rh.magic != kBlockRegionMagic || rh.version != kFormatVersionV3 ||
        rh.block_capacity == 0 || rh.block_capacity > kMaxBlockRecords ||
        rh.record_count != trace.header.record_count ||
        rh.block_count != (rh.record_count + rh.block_capacity - 1) /
                              rh.block_capacity) {
        throw std::runtime_error(
            "trace::read: corrupt v3 block region header at byte " +
            std::to_string(in.consumed() - sizeof(rh)) +
            "; --salvage recovers the decodable blocks");
    }

    // One allocation, then every block decodes in place: the fused
    // decodeBlockBodyInto writes records straight into their final
    // slots, and a memory-backed reader (buffer or mmap) hands the
    // block body out as a zero-copy view.
    trace.records.resize(static_cast<std::size_t>(rh.record_count));
    std::vector<std::uint8_t> body;
    std::uint64_t next_first = 0;
    for (std::uint64_t b = 0; b < rh.block_count; ++b) {
        BlockHeader bh;
        in.read(&bh, sizeof(bh));
        const std::uint64_t body_len =
            std::uint64_t{bh.seed_count} * sizeof(BlockSeed) +
            bh.payload_size;
        if (bh.magic != kBlockMagic || bh.first_record != next_first ||
            bh.record_count == 0 || bh.record_count > rh.block_capacity ||
            bh.record_count > rh.record_count - next_first ||
            body_len > maxBlockBodyBytes(bh.record_count, bh.seed_count)) {
            throw std::runtime_error(
                "trace::read: corrupt block header (block " +
                std::to_string(b) + " of " + std::to_string(rh.block_count) +
                ", at byte " +
                std::to_string(in.consumed() - sizeof(bh)) +
                "); --salvage recovers the decodable blocks");
        }
        const std::uint8_t* bp =
            in.tryView(static_cast<std::size_t>(body_len));
        if (bp == nullptr) {
            body.resize(static_cast<std::size_t>(body_len));
            in.read(body.data(), body.size());
            bp = body.data();
        }
        try {
            decodeBlockBodyInto(bh, bp, static_cast<std::size_t>(body_len),
                                rh.block_capacity,
                                trace.records.data() + next_first);
        } catch (const std::runtime_error& e) {
            throw std::runtime_error(
                std::string(e.what()) + " (block " + std::to_string(b) +
                " of " + std::to_string(rh.block_count) +
                "); --salvage recovers the decodable blocks");
        }
        next_first += bh.record_count;
    }
    if (next_first != rh.record_count)
        throw std::runtime_error(
            "trace::read: blocks decode to " + std::to_string(next_first) +
            " records, header claims " + std::to_string(rh.record_count));
}

/** Shared parse over any sequential reader. */
template <typename Reader>
TraceData
readImpl(Reader& in)
{
    TraceData trace;
    in.read(&trace.header, sizeof(Header));
    if (trace.header.magic != kMagic)
        throw std::runtime_error("trace::read: bad magic (not a PDT trace)");
    if (trace.header.version != kFormatVersion &&
        trace.header.version != kFormatVersionV3)
        throw std::runtime_error("trace::read: unsupported format version");

    std::uint32_t name_index = 0;
    trace.spe_programs.resize(trace.header.num_spes);
    for (auto& name : trace.spe_programs) {
        std::uint32_t len = 0;
        try {
            in.read(&len, sizeof(len));
            if (len > (1u << 20))
                throw std::runtime_error(
                    "trace::read: implausible name length " +
                    std::to_string(len));
            name.resize(len);
            in.read(name.data(), len);
        } catch (const std::runtime_error& e) {
            throw std::runtime_error(std::string(e.what()) +
                                     " (in name table entry " +
                                     std::to_string(name_index) + " of " +
                                     std::to_string(trace.header.num_spes) +
                                     ")");
        }
        ++name_index;
    }

    // The record count is untrusted input. When the reader knows how
    // many bytes are left (memory buffer, seekable stream), reject an
    // oversized count up front and read everything in one step.
    // Otherwise read in bounded chunks so a corrupt header cannot
    // trigger a giant allocation — the stream runs dry (and throws)
    // long before memory does.
    const std::uint64_t count = trace.header.record_count;
    if (count > std::numeric_limits<std::size_t>::max() / sizeof(Record))
        throw std::runtime_error("trace::read: record count overflows");
    if (trace.header.version == kFormatVersionV3) {
        readBlocksStrict(in, trace);
        trace.header.version = kFormatVersion; // decode is transparent
        return trace;
    }
    if (in.knowsRemaining()) {
        if (count * sizeof(Record) > in.remaining()) {
            throw std::runtime_error(
                "trace::read: truncated input: header claims " +
                std::to_string(count) + " records but only " +
                std::to_string(in.remaining() / sizeof(Record)) +
                " complete records (" + std::to_string(in.remaining()) +
                " bytes) remain after byte " + std::to_string(in.consumed()) +
                "; --salvage recovers the parsable prefix");
        }
        trace.records.resize(static_cast<std::size_t>(count));
        if (count > 0)
            in.read(trace.records.data(),
                    static_cast<std::size_t>(count) * sizeof(Record));
        return trace;
    }
    constexpr std::uint64_t kChunk = 4096;
    std::uint64_t remaining = count;
    trace.records.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kChunk)));
    std::vector<Record> chunk;
    while (remaining > 0) {
        const auto n = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, kChunk));
        chunk.resize(n);
        try {
            in.read(chunk.data(), n * sizeof(Record));
        } catch (const std::runtime_error& e) {
            throw std::runtime_error(
                std::string(e.what()) + " (after record " +
                std::to_string(trace.records.size()) + " of " +
                std::to_string(count) + ")");
        }
        trace.records.insert(trace.records.end(), chunk.begin(), chunk.end());
        remaining -= n;
    }
    return trace;
}

/** Append one problem note, capping the list so a trace with thousands
 *  of corrupt records cannot balloon the report. */
void
note(ReadReport& rep, std::string text)
{
    constexpr std::size_t kMaxNotes = 16;
    rep.salvaged = true;
    if (rep.notes.size() < kMaxNotes)
        rep.notes.push_back(std::move(text));
    else if (rep.notes.size() == kMaxNotes)
        rep.notes.push_back("... further problems elided");
}

/** Keep the plausible subset of @p raw, reporting everything skipped. */
void
filterRecords(const std::vector<Record>& raw, TraceData& trace,
              ReadReport& rep)
{
    trace.records.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const Record& r = raw[i];
        if (plausibleRecord(r, trace.header.num_spes)) {
            trace.records.push_back(r);
            continue;
        }
        rep.records_skipped += 1;
        rep.bytes_dropped += sizeof(Record);
        note(rep, "record " + std::to_string(i) + ": implausible fields "
                  "(kind=" + std::to_string(r.kind) +
                  " phase=" + std::to_string(r.phase) +
                  " core=" + std::to_string(r.core) + "), skipped");
    }
    rep.records_read = trace.records.size();
}

/**
 * Salvage parse: never throws past the header. Reads whatever prefix
 * is structurally sound, resynchronizes on the 32-byte record stride
 * past corrupt records, and reports every skip.
 */
template <typename Reader>
TraceData
readSalvageImpl(Reader& in, ReadReport& rep)
{
    rep = ReadReport{};
    TraceData trace;
    in.read(&trace.header, sizeof(Header)); // unrecoverable if absent
    if (trace.header.magic != kMagic)
        throw std::runtime_error("trace::read: bad magic (not a PDT trace)");
    if (trace.header.version != kFormatVersion &&
        trace.header.version != kFormatVersionV3)
        throw std::runtime_error("trace::read: unsupported format version");

    rep.records_expected = trace.header.record_count;

    // Name table. An implausible SPE count or a truncated name means
    // everything after it is unaligned guesswork; salvage what parses
    // and treat the rest of the file as the record region.
    constexpr std::uint32_t kMaxSpes = 1024;
    std::uint32_t num_spes = trace.header.num_spes;
    if (num_spes > kMaxSpes) {
        note(rep, "implausible SPE count " + std::to_string(num_spes) +
                  ", clamped to 0 (names unrecoverable)");
        num_spes = 0;
        trace.header.num_spes = kMaxSpes; // plausibility bound for cores
    }
    trace.spe_programs.resize(num_spes);
    for (std::uint32_t i = 0; i < num_spes; ++i) {
        try {
            std::uint32_t len = 0;
            in.read(&len, sizeof(len));
            if (len > (1u << 20)) {
                note(rep, "name table entry " + std::to_string(i) +
                          ": implausible length " + std::to_string(len) +
                          ", name table abandoned");
                break;
            }
            trace.spe_programs[i].resize(len);
            in.read(trace.spe_programs[i].data(), len);
        } catch (const std::runtime_error& e) {
            note(rep, std::string("name table entry ") + std::to_string(i) +
                      ": " + e.what());
            return trace; // file ended inside the name table
        }
    }

    // v3: slurp the rest of the input and walk the block region. Every
    // decodable block survives; corrupt blocks become gaps whose exact
    // per-core losses the next good block's seeds reconstruct.
    if (trace.header.version == kFormatVersionV3) {
        const std::uint64_t region_off = in.consumed();
        std::vector<std::uint8_t> rest;
        if (in.knowsRemaining()) {
            rest.resize(static_cast<std::size_t>(in.remaining()));
            if (!rest.empty())
                in.read(rest.data(), rest.size());
        } else {
            constexpr std::size_t kChunk = 1u << 16;
            std::size_t got = kChunk;
            while (got == kChunk) {
                const std::size_t old = rest.size();
                rest.resize(old + kChunk);
                got = in.readSome(rest.data() + old, kChunk);
                rest.resize(old + got);
            }
        }
        std::vector<Record> decoded;
        salvageBlockRegion(rest.data(), rest.size(), region_off,
                           trace.header.num_spes, decoded, rep);
        filterRecords(decoded, trace, rep);
        trace.header.record_count = trace.records.size();
        trace.header.version = kFormatVersion; // decode is transparent
        return trace;
    }

    // Records: read every complete 32-byte record present, regardless
    // of what the (untrusted) header count says, then filter.
    std::vector<Record> raw;
    if (in.knowsRemaining()) {
        const std::uint64_t avail = in.remaining() / sizeof(Record);
        const std::uint64_t tail = in.remaining() % sizeof(Record);
        if (rep.records_expected > avail) {
            note(rep, "header claims " +
                      std::to_string(rep.records_expected) +
                      " records, only " + std::to_string(avail) +
                      " complete records present; reading those");
        }
        const std::uint64_t n =
            std::min<std::uint64_t>(rep.records_expected, avail);
        raw.resize(static_cast<std::size_t>(n));
        if (n > 0)
            in.read(raw.data(), static_cast<std::size_t>(n) * sizeof(Record));
        if (tail > 0 && rep.records_expected > avail) {
            rep.bytes_dropped += tail;
            note(rep, "partial trailing record (" + std::to_string(tail) +
                      " bytes) dropped");
        }
    } else {
        // Non-seekable stream: read record-by-record until the claimed
        // count is reached or the stream runs dry.
        raw.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(rep.records_expected, 4096)));
        for (std::uint64_t i = 0; i < rep.records_expected; ++i) {
            Record r;
            try {
                in.read(&r, sizeof(r));
            } catch (const std::runtime_error&) {
                note(rep, "stream ended after record " + std::to_string(i) +
                          " of " + std::to_string(rep.records_expected));
                break;
            }
            raw.push_back(r);
        }
    }
    filterRecords(raw, trace, rep);
    trace.header.record_count = trace.records.size();
    return trace;
}

} // namespace

namespace {

/** Absolute offset of the first record for @p trace as written. */
std::uint64_t
recordRegionOffsetFor(const TraceData& trace)
{
    std::uint64_t off = sizeof(Header);
    for (const std::string& name : trace.spe_programs)
        off += sizeof(std::uint32_t) + name.size();
    return off;
}

} // namespace

void
write(std::ostream& os, const TraceData& trace, const WriteOptions& opt)
{
    const Header hdr = headerFor(trace, opt);
    os.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
    for (const std::string& name : trace.spe_programs) {
        const auto len = static_cast<std::uint32_t>(name.size());
        os.write(reinterpret_cast<const char*>(&len), sizeof(len));
        os.write(name.data(), static_cast<std::streamsize>(name.size()));
    }
    if (opt.compress) {
        const std::vector<std::uint8_t> region = encodeBlockRegion(
            trace, hdr, recordRegionOffsetFor(trace), opt.block_records,
            opt.legacy_payload);
        os.write(reinterpret_cast<const char*>(region.data()),
                 static_cast<std::streamsize>(region.size()));
    } else if (!trace.records.empty()) {
        os.write(reinterpret_cast<const char*>(trace.records.data()),
                 static_cast<std::streamsize>(
                     trace.records.size() * sizeof(Record)));
    }
    if (opt.index_stride > 0) {
        const TraceIndex idx = buildIndex(
            trace, hdr, recordRegionOffsetFor(trace), opt.index_stride);
        const std::vector<std::uint8_t> bytes = serializeIndex(idx);
        os.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }
    if (!os)
        throw std::runtime_error("trace::write: stream failure");
}

void
writeFile(const std::string& path, const TraceData& trace,
          const WriteOptions& opt)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error("trace::writeFile: cannot open " + path);
    write(os, trace, opt);
}

std::vector<std::uint8_t>
writeBuffer(const TraceData& trace, const WriteOptions& opt)
{
    const Header hdr = headerFor(trace, opt);
    std::size_t total = sizeof(hdr);
    for (const std::string& name : trace.spe_programs)
        total += sizeof(std::uint32_t) + name.size();
    if (!opt.compress)
        total += trace.records.size() * sizeof(Record);

    std::vector<std::uint8_t> out(total);
    std::uint8_t* p = out.data();
    auto append = [&p](const void* src, std::size_t n) {
        std::memcpy(p, src, n);
        p += n;
    };
    append(&hdr, sizeof(hdr));
    for (const std::string& name : trace.spe_programs) {
        const auto len = static_cast<std::uint32_t>(name.size());
        append(&len, sizeof(len));
        if (!name.empty())
            append(name.data(), name.size());
    }
    if (opt.compress) {
        const std::vector<std::uint8_t> region = encodeBlockRegion(
            trace, hdr, recordRegionOffsetFor(trace), opt.block_records,
            opt.legacy_payload);
        out.insert(out.end(), region.begin(), region.end());
    } else if (!trace.records.empty()) {
        append(trace.records.data(), trace.records.size() * sizeof(Record));
    }
    if (opt.index_stride > 0) {
        const TraceIndex idx = buildIndex(
            trace, hdr, recordRegionOffsetFor(trace), opt.index_stride);
        const std::vector<std::uint8_t> bytes = serializeIndex(idx);
        out.insert(out.end(), bytes.begin(), bytes.end());
    }
    return out;
}

std::string
ReadReport::summary() const
{
    std::string s = salvaged ? "salvaged " : "read ";
    s += std::to_string(records_read) + "/" +
         std::to_string(records_expected) + " records";
    if (records_skipped > 0)
        s += ", skipped " + std::to_string(records_skipped) + " corrupt";
    if (bytes_dropped > 0)
        s += ", dropped " + std::to_string(bytes_dropped) + " bytes";
    if (!notes.empty())
        s += " (" + std::to_string(notes.size()) + " notes)";
    return s;
}

bool
plausibleRecord(const Record& rec, std::uint32_t num_spes)
{
    // API records use a small dense kind space; tool records sit at
    // 200..202. Anything else is damage (a bit flip has a ~3/4 chance
    // of leaving the kind byte outside both ranges).
    constexpr std::uint8_t kMaxApiKind = 64;
    const bool kind_ok = rec.kind < kMaxApiKind ||
                         (rec.kind >= kSyncRecord && rec.kind <= kDropRecord);
    const bool phase_ok = rec.phase <= kPhaseEnd;
    const bool core_ok = rec.core <= num_spes; // 0 = PPE, 1+i = SPE i
    return kind_ok && phase_ok && core_ok;
}

TraceData
read(std::istream& is)
{
    StreamReader in(is);
    return readImpl(in);
}

TraceData
readFile(const std::string& path)
{
    // Regular files read through a private mapping: the v3 decode then
    // works zero-copy off the page cache. Anything mmap rejects — a
    // FIFO, a /proc-style pseudo-file, an empty file — falls back to
    // buffered stream reads with identical output and errors.
    MappedFile map(path);
    if (map.valid()) {
        BufReader in(map.data(), map.size());
        return readImpl(in);
    }
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("trace::readFile: cannot open " + path);
    return read(is);
}

TraceData
readBuffer(const std::vector<std::uint8_t>& buf)
{
    BufReader in(buf.data(), buf.size());
    return readImpl(in);
}

TraceData
readSalvage(std::istream& is, ReadReport& report)
{
    StreamReader in(is);
    return readSalvageImpl(in, report);
}

TraceData
readFileSalvage(const std::string& path, ReadReport& report)
{
    MappedFile map(path);
    if (map.valid()) {
        BufReader in(map.data(), map.size());
        return readSalvageImpl(in, report);
    }
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("trace::readFileSalvage: cannot open " + path);
    return readSalvage(is, report);
}

TraceData
readBufferSalvage(const std::vector<std::uint8_t>& buf, ReadReport& report)
{
    BufReader in(buf.data(), buf.size());
    return readSalvageImpl(in, report);
}

} // namespace cell::trace
