/**
 * @file
 * Trace reader/writer implementation.
 *
 * Layout: Header, then per SPE {u32 length, bytes} program names, then
 * header.record_count fixed 32-byte records.
 *
 * Buffer-based I/O (writeBuffer/readBuffer) serializes directly
 * to/from the byte vector — no stringstream detour, no intermediate
 * string copy. Stream-based read() sizes the record array in one step
 * when the stream is seekable, after validating the untrusted record
 * count against the bytes actually remaining; only non-seekable
 * streams fall back to bounded chunked reads.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "trace/reader.h"
#include "trace/writer.h"

namespace cell::trace {

namespace {

/** The header as it should appear on disk for @p trace. */
Header
headerFor(const TraceData& trace)
{
    Header hdr = trace.header;
    hdr.magic = kMagic;
    hdr.version = kFormatVersion;
    hdr.num_spes = static_cast<std::uint32_t>(trace.spe_programs.size());
    hdr.record_count = trace.records.size();
    return hdr;
}

/** Sequential reader over an in-memory byte range. */
class BufReader
{
  public:
    BufReader(const std::uint8_t* begin, std::size_t len)
        : p_(begin), end_(begin + len)
    {}

    void read(void* dst, std::size_t n)
    {
        if (n > remaining())
            throw std::runtime_error("trace::read: truncated input");
        std::memcpy(dst, p_, n);
        p_ += n;
    }

    /** Exact; an in-memory buffer always knows its size. */
    bool knowsRemaining() const { return true; }
    std::uint64_t remaining() const
    {
        return static_cast<std::uint64_t>(end_ - p_);
    }

  private:
    const std::uint8_t* p_;
    const std::uint8_t* end_;
};

/** Sequential reader over an istream; remaining() needs seekability. */
class StreamReader
{
  public:
    explicit StreamReader(std::istream& is) : is_(is)
    {
        // Probe seekability once: tellg()/seekg() fail harmlessly on
        // pipes. Clear the state afterwards so reads still work.
        const auto pos = is_.tellg();
        if (pos != std::streampos(-1)) {
            is_.seekg(0, std::ios::end);
            const auto end = is_.tellg();
            is_.seekg(pos);
            if (end != std::streampos(-1) && is_) {
                knows_remaining_ = true;
                remaining_ = static_cast<std::uint64_t>(end - pos);
            }
        }
        is_.clear();
    }

    void read(void* dst, std::size_t n)
    {
        is_.read(reinterpret_cast<char*>(dst),
                 static_cast<std::streamsize>(n));
        if (!is_ || static_cast<std::size_t>(is_.gcount()) != n)
            throw std::runtime_error("trace::read: truncated input");
        if (knows_remaining_)
            remaining_ -= n;
    }

    bool knowsRemaining() const { return knows_remaining_; }
    std::uint64_t remaining() const { return remaining_; }

  private:
    std::istream& is_;
    bool knows_remaining_ = false;
    std::uint64_t remaining_ = 0;
};

/** Shared parse over any sequential reader. */
template <typename Reader>
TraceData
readImpl(Reader& in)
{
    TraceData trace;
    in.read(&trace.header, sizeof(Header));
    if (trace.header.magic != kMagic)
        throw std::runtime_error("trace::read: bad magic (not a PDT trace)");
    if (trace.header.version != kFormatVersion)
        throw std::runtime_error("trace::read: unsupported format version");

    trace.spe_programs.resize(trace.header.num_spes);
    for (auto& name : trace.spe_programs) {
        std::uint32_t len = 0;
        in.read(&len, sizeof(len));
        if (len > (1u << 20))
            throw std::runtime_error("trace::read: implausible name length");
        name.resize(len);
        in.read(name.data(), len);
    }

    // The record count is untrusted input. When the reader knows how
    // many bytes are left (memory buffer, seekable stream), reject an
    // oversized count up front and read everything in one step.
    // Otherwise read in bounded chunks so a corrupt header cannot
    // trigger a giant allocation — the stream runs dry (and throws)
    // long before memory does.
    const std::uint64_t count = trace.header.record_count;
    if (count > std::numeric_limits<std::size_t>::max() / sizeof(Record))
        throw std::runtime_error("trace::read: record count overflows");
    if (in.knowsRemaining()) {
        if (count * sizeof(Record) > in.remaining())
            throw std::runtime_error(
                "trace::read: record count exceeds remaining input (" +
                std::to_string(count) + " records, " +
                std::to_string(in.remaining()) + " bytes left)");
        trace.records.resize(static_cast<std::size_t>(count));
        if (count > 0)
            in.read(trace.records.data(),
                    static_cast<std::size_t>(count) * sizeof(Record));
        return trace;
    }
    constexpr std::uint64_t kChunk = 4096;
    std::uint64_t remaining = count;
    trace.records.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kChunk)));
    std::vector<Record> chunk;
    while (remaining > 0) {
        const auto n = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, kChunk));
        chunk.resize(n);
        in.read(chunk.data(), n * sizeof(Record));
        trace.records.insert(trace.records.end(), chunk.begin(), chunk.end());
        remaining -= n;
    }
    return trace;
}

} // namespace

void
write(std::ostream& os, const TraceData& trace)
{
    const Header hdr = headerFor(trace);
    os.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
    for (const std::string& name : trace.spe_programs) {
        const auto len = static_cast<std::uint32_t>(name.size());
        os.write(reinterpret_cast<const char*>(&len), sizeof(len));
        os.write(name.data(), static_cast<std::streamsize>(name.size()));
    }
    if (!trace.records.empty()) {
        os.write(reinterpret_cast<const char*>(trace.records.data()),
                 static_cast<std::streamsize>(
                     trace.records.size() * sizeof(Record)));
    }
    if (!os)
        throw std::runtime_error("trace::write: stream failure");
}

void
writeFile(const std::string& path, const TraceData& trace)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error("trace::writeFile: cannot open " + path);
    write(os, trace);
}

std::vector<std::uint8_t>
writeBuffer(const TraceData& trace)
{
    const Header hdr = headerFor(trace);
    std::size_t total = sizeof(hdr);
    for (const std::string& name : trace.spe_programs)
        total += sizeof(std::uint32_t) + name.size();
    total += trace.records.size() * sizeof(Record);

    std::vector<std::uint8_t> out(total);
    std::uint8_t* p = out.data();
    auto append = [&p](const void* src, std::size_t n) {
        std::memcpy(p, src, n);
        p += n;
    };
    append(&hdr, sizeof(hdr));
    for (const std::string& name : trace.spe_programs) {
        const auto len = static_cast<std::uint32_t>(name.size());
        append(&len, sizeof(len));
        if (!name.empty())
            append(name.data(), name.size());
    }
    if (!trace.records.empty())
        append(trace.records.data(), trace.records.size() * sizeof(Record));
    return out;
}

TraceData
read(std::istream& is)
{
    StreamReader in(is);
    return readImpl(in);
}

TraceData
readFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("trace::readFile: cannot open " + path);
    return read(is);
}

TraceData
readBuffer(const std::vector<std::uint8_t>& buf)
{
    BufReader in(buf.data(), buf.size());
    return readImpl(in);
}

} // namespace cell::trace
