/**
 * @file
 * Trace reader/writer implementation.
 *
 * Layout: Header, then per SPE {u32 length, bytes} program names, then
 * header.record_count fixed 32-byte records.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trace/reader.h"
#include "trace/writer.h"

namespace cell::trace {

void
write(std::ostream& os, const TraceData& trace)
{
    Header hdr = trace.header;
    hdr.magic = kMagic;
    hdr.version = kFormatVersion;
    hdr.num_spes = static_cast<std::uint32_t>(trace.spe_programs.size());
    hdr.record_count = trace.records.size();

    os.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
    for (const std::string& name : trace.spe_programs) {
        const auto len = static_cast<std::uint32_t>(name.size());
        os.write(reinterpret_cast<const char*>(&len), sizeof(len));
        os.write(name.data(), static_cast<std::streamsize>(name.size()));
    }
    if (!trace.records.empty()) {
        os.write(reinterpret_cast<const char*>(trace.records.data()),
                 static_cast<std::streamsize>(
                     trace.records.size() * sizeof(Record)));
    }
    if (!os)
        throw std::runtime_error("trace::write: stream failure");
}

void
writeFile(const std::string& path, const TraceData& trace)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error("trace::writeFile: cannot open " + path);
    write(os, trace);
}

std::vector<std::uint8_t>
writeBuffer(const TraceData& trace)
{
    std::ostringstream os(std::ios::binary);
    write(os, trace);
    const std::string s = os.str();
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

TraceData
read(std::istream& is)
{
    TraceData trace;
    is.read(reinterpret_cast<char*>(&trace.header), sizeof(Header));
    if (!is || is.gcount() != sizeof(Header))
        throw std::runtime_error("trace::read: truncated header");
    if (trace.header.magic != kMagic)
        throw std::runtime_error("trace::read: bad magic (not a PDT trace)");
    if (trace.header.version != kFormatVersion)
        throw std::runtime_error("trace::read: unsupported format version");

    trace.spe_programs.resize(trace.header.num_spes);
    for (auto& name : trace.spe_programs) {
        std::uint32_t len = 0;
        is.read(reinterpret_cast<char*>(&len), sizeof(len));
        if (!is)
            throw std::runtime_error("trace::read: truncated name table");
        if (len > (1u << 20))
            throw std::runtime_error("trace::read: implausible name length");
        name.resize(len);
        is.read(name.data(), len);
        if (!is)
            throw std::runtime_error("trace::read: truncated name table");
    }

    // The record count is untrusted input: read in bounded chunks so
    // a corrupt header cannot trigger a giant up-front allocation —
    // the stream runs dry (and throws) long before memory does.
    constexpr std::uint64_t kChunk = 4096;
    std::uint64_t remaining = trace.header.record_count;
    trace.records.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kChunk)));
    std::vector<Record> chunk;
    while (remaining > 0) {
        const auto n =
            static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kChunk));
        chunk.resize(n);
        is.read(reinterpret_cast<char*>(chunk.data()),
                static_cast<std::streamsize>(n * sizeof(Record)));
        if (!is)
            throw std::runtime_error("trace::read: truncated record stream");
        trace.records.insert(trace.records.end(), chunk.begin(), chunk.end());
        remaining -= n;
    }
    return trace;
}

TraceData
readFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("trace::readFile: cannot open " + path);
    return read(is);
}

TraceData
readBuffer(const std::vector<std::uint8_t>& buf)
{
    std::istringstream is(std::string(buf.begin(), buf.end()),
                          std::ios::binary);
    return read(is);
}

} // namespace cell::trace
