/**
 * @file
 * Trace deserialization.
 */

#ifndef CELL_TRACE_READER_H
#define CELL_TRACE_READER_H

#include <iosfwd>
#include <string>

#include "trace/format.h"

namespace cell::trace {

/** Parse a trace from a binary stream. @throws std::runtime_error on
 *  bad magic, version mismatch, or truncation. */
TraceData read(std::istream& is);

/** Parse a trace from @p path. */
TraceData readFile(const std::string& path);

/** Parse from an in-memory byte buffer. */
TraceData readBuffer(const std::vector<std::uint8_t>& buf);

} // namespace cell::trace

#endif // CELL_TRACE_READER_H
