/**
 * @file
 * Trace deserialization.
 *
 * Two modes:
 *
 *  - Strict (read/readFile/readBuffer): any structural damage —
 *    bad magic, version mismatch, truncation, an impossible record
 *    count — throws std::runtime_error with the byte offset and record
 *    index where parsing stopped. Use when the trace must be whole.
 *
 *  - Salvage (readSalvage/readFileSalvage/readBufferSalvage): recover
 *    everything recoverable from a damaged trace. The undamaged prefix
 *    always survives; after damage the reader resynchronizes on the
 *    fixed 32-byte record stride, skipping records whose fields are
 *    implausible, clamping an oversized header count to the bytes
 *    actually present, and dropping a partial trailing record. What
 *    was skipped is reported in a ReadReport so tools and the analyzer
 *    can tell the user exactly what is missing. Only a damaged
 *    header (bad magic / unknown version) is unrecoverable.
 */

#ifndef CELL_TRACE_READER_H
#define CELL_TRACE_READER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/format.h"

namespace cell::trace {

/** What salvage recovered and what it had to give up. */
struct ReadReport
{
    /** True if any damage was detected (and worked around). */
    bool salvaged = false;
    /** Records the header claimed. */
    std::uint64_t records_expected = 0;
    /** Records recovered into TraceData::records. */
    std::uint64_t records_read = 0;
    /** Complete 32-byte records skipped as implausible (corrupt). */
    std::uint64_t records_skipped = 0;
    /** Bytes discarded: skipped records plus any partial tail. */
    std::uint64_t bytes_dropped = 0;
    /** Human-readable diagnostics, one per problem found. */
    std::vector<std::string> notes;

    /** One-line summary ("salvaged 57/61 records, skipped 3, ..."). */
    std::string summary() const;
};

/** Parse a trace from a binary stream. @throws std::runtime_error on
 *  bad magic, version mismatch, or truncation; the message carries the
 *  byte offset and record index where parsing failed. */
TraceData read(std::istream& is);

/** Parse a trace from @p path. */
TraceData readFile(const std::string& path);

/** Parse from an in-memory byte buffer. */
TraceData readBuffer(const std::vector<std::uint8_t>& buf);

/** @name Salvage mode
 *  Recover the parsable subset of a damaged trace. @p report is
 *  cleared and filled with what happened. Throws only when the header
 *  itself is unusable (bad magic or unsupported version).
 */
///@{
TraceData readSalvage(std::istream& is, ReadReport& report);
TraceData readFileSalvage(const std::string& path, ReadReport& report);
TraceData readBufferSalvage(const std::vector<std::uint8_t>& buf,
                            ReadReport& report);
///@}

/** Salvage-mode record filter: false if a record's fields are outside
 *  any plausible encoding (kind/phase/core range checks). Exposed for
 *  the analyzer and tests. */
bool plausibleRecord(const Record& rec, std::uint32_t num_spes);

} // namespace cell::trace

#endif // CELL_TRACE_READER_H
