/**
 * @file
 * Shard planner and per-shard reads.
 */

#include "trace/shard.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <thread>

#include "trace/reader.h"

namespace cell::trace {

namespace {

/** Read exactly @p n bytes or throw with the absolute offset. */
void
readExact(std::istream& is, void* dst, std::size_t n, std::uint64_t at)
{
    is.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!is || static_cast<std::size_t>(is.gcount()) != n) {
        throw std::runtime_error(
            "trace::planShards: truncated input at byte " +
            std::to_string(at + static_cast<std::uint64_t>(
                                    std::max<std::streamsize>(is.gcount(), 0))));
    }
}

} // namespace

ShardPlan
planShards(std::istream& is, const ShardOptions& opt)
{
    // Sharding needs random access: the plan needs the end offset and
    // every worker seeks to its shard. Probe seekability the same way
    // the serial reader does, but treat failure as an error here.
    const std::streampos start = is.tellg();
    std::streampos end(-1);
    if (start != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        end = is.tellg();
        is.seekg(start);
    }
    is.clear();
    if (start == std::streampos(-1) || end == std::streampos(-1)) {
        throw std::runtime_error(
            "trace::planShards: input is not seekable (pipe?); sharded "
            "parallel analysis needs a file — use --threads 1 to read "
            "the stream serially");
    }

    ShardPlan plan;
    std::uint64_t at = static_cast<std::uint64_t>(start);
    readExact(is, &plan.header, sizeof(Header), at);
    at += sizeof(Header);
    if (plan.header.magic != kMagic)
        throw std::runtime_error(
            "trace::planShards: bad magic (not a PDT trace)");
    if (plan.header.version != kFormatVersion &&
        plan.header.version != kFormatVersionV3)
        throw std::runtime_error(
            "trace::planShards: unsupported format version");

    plan.spe_programs.resize(plan.header.num_spes);
    for (std::uint32_t i = 0; i < plan.header.num_spes; ++i) {
        std::uint32_t len = 0;
        readExact(is, &len, sizeof(len), at);
        at += sizeof(len);
        if (len > (1u << 20))
            throw std::runtime_error(
                "trace::planShards: implausible name length " +
                std::to_string(len) + " (in name table entry " +
                std::to_string(i) + ")");
        plan.spe_programs[i].resize(len);
        readExact(is, plan.spe_programs[i].data(), len, at);
        at += len;
    }

    plan.record_region_offset = at;
    const std::uint64_t remaining = static_cast<std::uint64_t>(end) - at;
    const std::uint64_t count = plan.header.record_count;
    if (count > std::numeric_limits<std::uint64_t>::max() / sizeof(Record))
        throw std::runtime_error("trace::planShards: record count overflows");

    // v3 compressed region: shard on whole blocks — the smallest
    // independently decodable unit — via the (validated or rebuilt)
    // directory. No boundary probing: every block is checksummed, so a
    // boundary cannot sit on damaged ground undetected.
    if (plan.header.version == kFormatVersionV3) {
        BlockRegionHeader rh;
        readExact(is, &rh, sizeof(rh), at);
        if (rh.magic != kBlockRegionMagic ||
            rh.version != kFormatVersionV3 || rh.block_capacity == 0 ||
            rh.block_capacity > kMaxBlockRecords ||
            rh.record_count != count ||
            rh.block_count != (count + rh.block_capacity - 1) /
                                  rh.block_capacity ||
            rh.directory_offset > static_cast<std::uint64_t>(end)) {
            throw std::runtime_error(
                "trace::planShards: corrupt v3 block region header; "
                "--salvage recovers the decodable blocks");
        }
        plan.v3 = true;
        plan.block_capacity = rh.block_capacity;
        plan.record_count = count;
        plan.header.version = kFormatVersion; // decode is transparent
        try {
            plan.blocks = loadBlockDirectory(is, at, rh);
        } catch (const std::runtime_error& e) {
            throw std::runtime_error(std::string("trace::planShards: ") +
                                     e.what());
        }

        unsigned targetv3 = opt.target_shards;
        if (targetv3 == 0)
            targetv3 = std::max(1u, std::thread::hardware_concurrency()) * 4;
        std::uint64_t per_shardv3 = std::max<std::uint64_t>(
            opt.min_records_per_shard, (count + targetv3 - 1) / targetv3);
        per_shardv3 = std::max<std::uint64_t>(per_shardv3, 1);

        Shard cur;
        cur.byte_offset = plan.record_region_offset;
        for (std::size_t k = 0; k < plan.blocks.size(); ++k) {
            if (cur.num_records >= per_shardv3) {
                plan.shards.push_back(cur);
                cur = Shard{};
                cur.first_record =
                    static_cast<std::uint64_t>(k) * rh.block_capacity;
                cur.first_block = k;
                cur.byte_offset = plan.record_region_offset +
                                  cur.first_record * sizeof(Record);
            }
            cur.num_records += plan.blocks[k].record_count;
            cur.num_blocks += 1;
        }
        plan.shards.push_back(cur); // the tail (or one empty shard)
        is.seekg(start);
        return plan;
    }

    if (count * sizeof(Record) > remaining) {
        throw std::runtime_error(
            "trace::planShards: truncated input: header claims " +
            std::to_string(count) + " records but only " +
            std::to_string(remaining / sizeof(Record)) +
            " complete records remain after byte " + std::to_string(at) +
            "; --salvage recovers the parsable prefix");
    }
    plan.record_count = count;

    // Fixed-record-range boundaries.
    unsigned target = opt.target_shards;
    if (target == 0)
        target = std::max(1u, std::thread::hardware_concurrency()) * 4;
    std::uint64_t per_shard = std::max<std::uint64_t>(
        opt.min_records_per_shard, (count + target - 1) / target);
    per_shard = std::max<std::uint64_t>(per_shard, 1);

    std::vector<std::uint64_t> bounds; // shard start indices
    for (std::uint64_t r = 0; r < count; r += per_shard)
        bounds.push_back(r);
    if (bounds.empty())
        bounds.push_back(0); // one (empty) shard keeps callers simple

    // Boundary validation: probe each interior boundary with the
    // salvage resync predicate. An implausible record at a boundary
    // suggests stride damage; slide the boundary forward (growing the
    // previous shard) until a plausible record starts the shard, or
    // keep it if the window is exhausted — serial semantics accept the
    // damage either way, the partition just starts shards on cleaner
    // ground for diagnostics.
    for (std::size_t b = 1; b < bounds.size(); ++b) {
        const std::uint64_t limit = std::min<std::uint64_t>(
            bounds[b] + opt.boundary_resync_window,
            (b + 1 < bounds.size()) ? bounds[b + 1] : count);
        std::uint64_t r = bounds[b];
        for (; r < limit; ++r) {
            Record rec;
            is.seekg(static_cast<std::streamoff>(plan.record_region_offset +
                                                 r * sizeof(Record)));
            readExact(is, &rec, sizeof(rec),
                      plan.record_region_offset + r * sizeof(Record));
            if (plausibleRecord(rec, plan.header.num_spes))
                break;
        }
        if (r != bounds[b] && r < limit) {
            bounds[b] = r;
            plan.boundaries_adjusted += 1;
        }
    }
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    plan.shards.reserve(bounds.size());
    for (std::size_t b = 0; b < bounds.size(); ++b) {
        Shard s;
        s.first_record = bounds[b];
        s.num_records =
            ((b + 1 < bounds.size()) ? bounds[b + 1] : count) - bounds[b];
        s.byte_offset =
            plan.record_region_offset + s.first_record * sizeof(Record);
        plan.shards.push_back(s);
    }
    is.seekg(start); // leave the stream where we found it
    return plan;
}

ShardPlan
planShardsFile(const std::string& path, const ShardOptions& opt)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("trace::planShardsFile: cannot open " + path);
    return planShards(is, opt);
}

void
readShardInto(std::istream& is, const ShardPlan& plan, std::size_t index,
              Record* dst)
{
    const Shard& s = plan.shards.at(index);
    if (s.num_records == 0)
        return;
    if (plan.v3) {
        // Decode the shard's whole blocks in order; the directory was
        // validated (or rebuilt from block headers) by planShards.
        std::vector<std::uint8_t> buf;
        std::uint64_t done = 0;
        for (std::uint64_t k = s.first_block;
             k < s.first_block + s.num_blocks; ++k) {
            const BlockDirEntry& de = plan.blocks.at(
                static_cast<std::size_t>(k));
            buf.resize(de.block_bytes);
            is.clear();
            is.seekg(static_cast<std::streamoff>(de.offset));
            is.read(reinterpret_cast<char*>(buf.data()),
                    static_cast<std::streamsize>(buf.size()));
            if (!is || static_cast<std::uint64_t>(is.gcount()) != buf.size())
                throw std::runtime_error(
                    "trace::readShard: short read in block " +
                    std::to_string(k) + " at byte " +
                    std::to_string(de.offset));
            BlockHeader bh;
            std::memcpy(&bh, buf.data(), sizeof(bh));
            // Check the claimed count against the directory BEFORE
            // decoding so the fused decode can never write past dst.
            if (bh.record_count != de.record_count ||
                done + bh.record_count > s.num_records)
                throw std::runtime_error(
                    "trace::readShard: block " + std::to_string(k) +
                    " record count disagrees with the directory");
            decodeBlockBodyInto(bh, buf.data() + sizeof(bh),
                                buf.size() - sizeof(bh), plan.block_capacity,
                                dst + done);
            done += bh.record_count;
        }
        if (done != s.num_records)
            throw std::runtime_error(
                "trace::readShard: shard " + std::to_string(index) +
                " decoded " + std::to_string(done) + " of " +
                std::to_string(s.num_records) + " records");
        return;
    }
    is.clear();
    is.seekg(static_cast<std::streamoff>(s.byte_offset));
    is.read(reinterpret_cast<char*>(dst),
            static_cast<std::streamsize>(s.num_records * sizeof(Record)));
    if (!is || static_cast<std::uint64_t>(is.gcount()) !=
                   s.num_records * sizeof(Record)) {
        throw std::runtime_error(
            "trace::readShard: short read in shard " + std::to_string(index) +
            " at byte " + std::to_string(s.byte_offset));
    }
}

std::vector<Record>
readShard(std::istream& is, const ShardPlan& plan, std::size_t index)
{
    std::vector<Record> out(plan.shards.at(index).num_records);
    readShardInto(is, plan, index, out.data());
    return out;
}

} // namespace cell::trace
