/**
 * @file
 * v3 compressed block format for the record region.
 *
 * A v1 record region stores full 32-byte records even though
 * consecutive records are nearly identical: timestamps advance by
 * small deltas, the same few (kind, phase, core) triples repeat, and
 * payload words change slowly. The v3 region (file header version 3,
 * opt-in via WriteOptions::compress) exploits exactly that redundancy
 * while keeping every other property of the format:
 *
 *   Header (40 bytes, version = 3)
 *   name table                         (unchanged from v1)
 *   BlockRegionHeader                  (48 bytes)
 *   Block 0:  BlockHeader + BlockSeed x num_cores + varint payload
 *   ...
 *   Block n-1
 *   BlockDirEntry x n                  (16 bytes each)
 *   BlockDirTrailer                    (24 bytes)
 *   [optional v2 footer index]         (unchanged, virtual offsets)
 *
 * Each block covers exactly `block_capacity` records (the last may be
 * short) and is INDEPENDENTLY decodable: its header carries the
 * uncompressed record count/size and an FNV-1a 64 checksum over the
 * seeds + payload, and its seeds snapshot, per core, the same replay
 * state the v2 index entries snapshot (clock mapping, drop epoch,
 * monotonic-clamp tick, open-begin pending mask) plus the number of
 * the core's records before the block. A corrupt block therefore
 * becomes a bounded gap: salvage resynchronizes on the next block's
 * magic, knows exactly how many records each core lost from the seed
 * deltas, and injects synthetic sync + drop markers so the analyzer
 * places every post-gap event exactly where a full decode would have
 * and flags the gap in its loss report.
 *
 * Payload encoding (per block): a dictionary of the distinct
 * (kind, phase, core) triples in first-appearance order, then the
 * per-record fields — a varint dictionary index, a timestamp
 * (absolute for the core's first record in the block, zigzag delta
 * against the core's previous record otherwise), and zigzag deltas of
 * a/b/c/d against the previous record of the SAME dictionary entry.
 * All varints are LEB128; deltas are modulo arithmetic, so decode is
 * exact for arbitrary field values. Typical traces compress 3-5x.
 *
 * Two payload LAYOUTS carry those fields (BlockHeader::payload):
 *
 *  - kPayloadInterleaved (0): the original layout — all six fields of
 *    record i, then all six of record i+1. This is what every earlier
 *    writer produced (the field was a zero reserved word), so old v3
 *    files decode unchanged.
 *  - kPayloadColumnar (1): what the writer emits now. A 28-byte table
 *    of seven u32 stream lengths [dict, index, timestamp, a, b, c, d]
 *    followed by the seven streams back to back, each field a
 *    contiguous varint run. The a/b/c/d streams add zero-run
 *    encoding: a 0x00 lead byte is followed by a varint count of
 *    consecutive zero deltas (a nonzero delta's varint never starts
 *    with 0x00, so the escape is unambiguous). Decode is a tight loop
 *    per stream writing straight into Record storage — measurably
 *    faster than v1's raw read on typical traces, and the reason v3
 *    decode now beats v1 wall time (bench_v3_blocks).
 *
 * Both layouts encode identical information: a block re-encoded from
 * one layout to the other decodes to identical records, and files may
 * mix layouts block by block (readers dispatch per block header).
 *
 * The v2 footer index is reused unchanged via VIRTUAL offsets: entries
 * address record `i` as region_offset + i*32 exactly as if the region
 * were uncompressed, and the query layer maps the virtual offset to
 * (block = i / capacity, offset-in-block) through the directory — the
 * indexed seek win survives compression.
 */

#ifndef CELL_TRACE_BLOCK_H
#define CELL_TRACE_BLOCK_H

#include <cstdint>
#include <deque>
#include <fstream>
#include <future>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/format.h"
#include "trace/mmap.h"
#include "trace/reader.h"
#include "util/worker_pool.h"

namespace cell::trace {

/** Region magic: "CBEPDTB3". */
constexpr std::uint64_t kBlockRegionMagic = 0x3342544450454243ULL;

/** Per-block magic: "PDB3". */
constexpr std::uint32_t kBlockMagic = 0x33424450;

/** Default records per block (2048 x 32 bytes = 64 KiB uncompressed). */
constexpr std::uint32_t kDefaultBlockRecords = 2048;

/** Hard cap on records per block (keeps per-block buffers bounded). */
constexpr std::uint32_t kMaxBlockRecords = 1u << 20;

/** BlockSeed.flags: the core had seen a sync record before the block. */
constexpr std::uint16_t kSeedHaveSync = 1;

/** BlockHeader.payload: original interleaved per-record layout. */
constexpr std::uint32_t kPayloadInterleaved = 0;

/** BlockHeader.payload: per-field columnar streams (current writer). */
constexpr std::uint32_t kPayloadColumnar = 1;

/** Leads the block region (at the record-region offset). */
struct BlockRegionHeader
{
    std::uint64_t magic = kBlockRegionMagic;
    std::uint32_t version = kFormatVersionV3;
    /** Records per block; every block but the last holds exactly this. */
    std::uint32_t block_capacity = kDefaultBlockRecords;
    std::uint64_t block_count = 0;
    /** Must equal the file header's record_count. */
    std::uint64_t record_count = 0;
    /** Absolute file offset of the first BlockDirEntry. */
    std::uint64_t directory_offset = 0;
    std::uint64_t reserved = 0;
};
static_assert(sizeof(BlockRegionHeader) == 48,
              "block region header is 48 bytes");

/** Per-core replay snapshot taken BEFORE the block's first record —
 *  the same state a v2 IndexEntry snapshots, plus the core's record
 *  ordinal, so salvage can account a lost block exactly. */
struct BlockSeed
{
    /** Max clamped event time of this core before the block. */
    std::uint64_t tick = 0;
    std::uint64_t sync_tb = 0;
    /** Open-begin pending mask (see trace/index.h). */
    std::uint64_t open_begins = 0;
    /** This core's records before the block (all blocks so far). */
    std::uint64_t records_before = 0;
    std::uint32_t sync_raw = 0;
    /** Drop epoch entering the block. */
    std::uint32_t epoch = 0;
    std::uint16_t core = 0;
    std::uint16_t flags = 0;
    std::uint32_t reserved = 0;
};
static_assert(sizeof(BlockSeed) == 48, "block seeds are 48 bytes");

/** Leads each block; the checksum covers the seeds + payload bytes. */
struct BlockHeader
{
    std::uint32_t magic = kBlockMagic;
    /** Records encoded in this block (<= region block_capacity). */
    std::uint32_t record_count = 0;
    /** Encoded payload bytes following the seeds. */
    std::uint32_t payload_size = 0;
    /** Seeds following this header (== num_spes + 1 as written). */
    std::uint32_t seed_count = 0;
    /** Global ordinal of the block's first record. */
    std::uint64_t first_record = 0;
    /** FNV-1a 64 over the seed bytes then the payload bytes. */
    std::uint64_t checksum = 0;
    /** record_count * 32: what the block decodes to. */
    std::uint32_t uncompressed_size = 0;
    /** Payload layout: kPayloadInterleaved (every pre-columnar writer
     *  left this word zero) or kPayloadColumnar. */
    std::uint32_t payload = kPayloadInterleaved;
};
static_assert(sizeof(BlockHeader) == 40, "block headers are 40 bytes");

/** Directory: one entry per block, written after the last block. */
struct BlockDirEntry
{
    /** Absolute file offset of the block's BlockHeader. */
    std::uint64_t offset = 0;
    /** Whole block size: header + seeds + payload. */
    std::uint32_t block_bytes = 0;
    std::uint32_t record_count = 0;

    bool operator==(const BlockDirEntry&) const = default;
};
static_assert(sizeof(BlockDirEntry) == 16, "directory entries are 16 bytes");

/** Closes the directory. */
struct BlockDirTrailer
{
    /** FNV-1a 64 over the directory entry bytes. */
    std::uint64_t checksum = 0;
    /** Directory entry bytes (block_count * 16). */
    std::uint64_t dir_bytes = 0;
    std::uint64_t magic = kBlockRegionMagic;
};
static_assert(sizeof(BlockDirTrailer) == 24, "directory trailer is 24 bytes");

/** One fully-decoded block. */
struct DecodedBlock
{
    BlockHeader header;
    std::vector<BlockSeed> seeds;
    std::vector<Record> records;
};

/** Upper bound on seeds + payload bytes for a plausible block: varint
 *  worst cases sum below 48 bytes per record plus dictionary slack. */
std::uint64_t maxBlockBodyBytes(std::uint32_t record_count,
                                std::uint32_t seed_count);

/**
 * Encode the whole block region for @p trace: region header, blocks,
 * directory, trailer. @p header must be the effective on-disk header
 * and @p region_offset the absolute offset the region will be written
 * at (directory/block offsets are absolute). @p block_records is
 * clamped to [1, kMaxBlockRecords]; 0 selects kDefaultBlockRecords.
 * @p legacy_payload selects the interleaved block layout old readers
 * saw (back-compat tests); the default is columnar.
 */
std::vector<std::uint8_t> encodeBlockRegion(const TraceData& trace,
                                            const Header& header,
                                            std::uint64_t region_offset,
                                            std::uint32_t block_records,
                                            bool legacy_payload = false);

/**
 * Decode one block body (seeds + payload, as checksummed). Validates
 * the checksum and every structural claim; @p capacity is the region's
 * block_capacity. @throws std::runtime_error on any mismatch.
 */
void decodeBlockBody(const BlockHeader& hdr, const std::uint8_t* body,
                     std::size_t body_len, std::uint32_t capacity,
                     DecodedBlock& out);

/**
 * Fused decode: identical validation to decodeBlockBody, but the
 * hdr.record_count records are written straight into @p dst (caller
 * owns at least that much storage) with no intermediate buffers, and
 * the seeds are checksummed but not copied out. This is the strict
 * read path — one resize of TraceData::records, then every block
 * decodes in place.
 */
void decodeBlockBodyInto(const BlockHeader& hdr, const std::uint8_t* body,
                         std::size_t body_len, std::uint32_t capacity,
                         Record* dst);

/**
 * Salvage walk over the bytes of a (possibly damaged) block region.
 * @p data points at where the BlockRegionHeader should be and spans
 * everything up to end-of-input (directory and any index footer
 * included — the walk stops at the directory). Decodable blocks append
 * their records to @p raw in order; a corrupt or missing block becomes
 * a gap: the next good block's seeds resynchronize each core's clock
 * (synthetic sync record) and account the loss (synthetic drop marker
 * with the exact per-core count), and @p rep records what was lost.
 * Records in @p raw are NOT plausibility-filtered; the caller applies
 * the same filter the v1 salvage path uses.
 */
void salvageBlockRegion(const std::uint8_t* data, std::size_t len,
                        std::uint64_t region_offset, std::uint32_t num_spes,
                        std::vector<Record>& raw, ReadReport& rep);

/**
 * Bounded-memory streaming reader over a v3 trace: decodes one block
 * at a time, never materializing the whole record region. Sequential
 * use (next()) works on non-seekable streams; random access
 * (directory()/readBlock()) needs a seekable one. Strict semantics:
 * any structural damage throws.
 *
 * The path constructor memory-maps regular files (zero-copy block
 * bodies) and falls back to buffered stream reads on anything mmap
 * rejects — FIFOs, /proc-style pseudo-files — with identical output.
 *
 * pipeline() arms prefetch-decode: next() hands out block N while
 * blocks N+1..N+window decode on WorkerPool workers. Byte reads stay
 * on the consumer thread (streams are not shared across threads; on a
 * mapped file the "read" is a pointer slice), only the CPU-heavy
 * decode moves. Output and error behavior are identical to the
 * unpipelined reader: a corrupt block throws from the next() call
 * that would have returned it.
 */
class BlockReader
{
  public:
    /** Reads the file header, name table, and region header.
     *  @throws std::runtime_error unless @p is holds a v3 trace. */
    explicit BlockReader(std::istream& is);

    /** Same, from a file: mmap-backed when the file is mappable,
     *  buffered stream I/O otherwise. */
    explicit BlockReader(const std::string& path);

    /** Drains any in-flight prefetch decodes before tearing down. */
    ~BlockReader();

    BlockReader(const BlockReader&) = delete;
    BlockReader& operator=(const BlockReader&) = delete;

    /** File header, version normalized to 1 (decode is transparent). */
    const Header& header() const { return header_; }
    const std::vector<std::string>& spePrograms() const { return names_; }
    const BlockRegionHeader& region() const { return region_; }
    std::uint64_t blockCount() const { return region_.block_count; }

    /** True when the source is a memory mapping (path constructor on a
     *  mappable file); false on the buffered fallback. */
    bool mapped() const { return mem_ != nullptr; }

    /** Arm pipelined decode-ahead on @p pool: up to @p window blocks
     *  (clamped to [1, 16]) decode ahead of the consumer. Call before
     *  the first next(); a pool of 1 degrades to inline decode. */
    void pipeline(util::WorkerPool& pool, unsigned window = 2);

    /** Decode the next block in file order into @p out. Returns false
     *  once every block has been read. @throws on damage. */
    bool next(DecodedBlock& out);

    /** The validated directory (lazily loaded; falls back to walking
     *  the block headers when the directory bytes are damaged).
     *  @throws if the stream is not seekable. */
    const std::vector<BlockDirEntry>& directory();

    /** Random access: decode block @p index via the directory. */
    void readBlock(std::uint64_t index, DecodedBlock& out);

  private:
    /** One decode-ahead slot: the block's bytes were read on the
     *  consumer thread; the decode ran (or is running) on a worker. */
    struct Inflight
    {
        BlockHeader header;
        std::vector<std::uint8_t> body; ///< empty on a mapped source
        DecodedBlock block;
        std::exception_ptr error;
        std::future<void> done;
    };

    void parseHeaders();
    void readSeq(void* dst, std::size_t n, const char* what);
    /** Read the next block's header + body bytes (sequentially) and
     *  start its decode; false when no blocks remain. */
    bool startPrefetch();

    std::istream* is_ = nullptr; ///< null on a mapped source
    std::unique_ptr<std::ifstream> owned_is_;
    MappedFile map_;
    const std::uint8_t* mem_ = nullptr; ///< whole file when mapped
    std::size_t mem_len_ = 0;
    std::uint64_t seq_pos_ = 0; ///< header-parse cursor (mapped source)

    Header header_;
    std::vector<std::string> names_;
    BlockRegionHeader region_;
    std::uint64_t region_offset_ = 0; ///< absolute region-header offset
    std::uint64_t next_block_ = 0;
    std::uint64_t next_offset_ = 0; ///< absolute offset of next block
    std::uint64_t next_first_ = 0;  ///< expected first_record of it
    bool have_directory_ = false;
    std::vector<BlockDirEntry> directory_;

    util::WorkerPool* pool_ = nullptr; ///< non-null once pipelined
    unsigned window_ = 0;
    bool src_failed_ = false; ///< a prefetch read failed; stop reading
    std::deque<std::unique_ptr<Inflight>> inflight_;
    std::deque<std::unique_ptr<Inflight>> free_; ///< recycled slots
};

/** What probeBlockRegion() learns about a file's record region. */
struct BlockRegionProbe
{
    /** The file is a v3 trace with a readable region header. */
    bool present = false;
    BlockRegionHeader region{};
    /** Region header + blocks + directory + trailer, in bytes. */
    std::uint64_t region_bytes = 0;
};

/** Cheap v3 sniff: header + name table + region header only. Restores
 *  the stream position; returns present=false instead of throwing. */
BlockRegionProbe probeBlockRegion(std::istream& is);

/** Same, for the file at @p path. */
BlockRegionProbe probeBlockRegionFile(const std::string& path);

/**
 * Read + validate the block directory of a v3 trace whose region
 * header is @p region (checksum, entry bounds, capacity partition).
 * Damaged directory bytes fall back to a sequential walk of the block
 * headers, which reconstructs the same entries — parallel consumers
 * keep working, and keep matching the serial reader, on a trace whose
 * blocks are fine but whose directory is not. @throws when neither
 * path yields a consistent directory.
 */
std::vector<BlockDirEntry> loadBlockDirectory(std::istream& is,
                                              std::uint64_t region_offset,
                                              const BlockRegionHeader& region);

/** Same, over the whole file mapped in memory (@p file / @p file_len
 *  span the file from byte 0, so directory offsets index directly). */
std::vector<BlockDirEntry> loadBlockDirectory(const std::uint8_t* file,
                                              std::size_t file_len,
                                              std::uint64_t region_offset,
                                              const BlockRegionHeader& region);

} // namespace cell::trace

#endif // CELL_TRACE_BLOCK_H
