#include "trace/mmap.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define CELL_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cell::trace {

#if CELL_HAVE_MMAP

MappedFile::MappedFile(const std::string& path)
{
    // Only regular files with a real size map usefully: /proc-style
    // pseudo-files report st_size 0 even when reads return data, and
    // FIFOs/devices cannot be mapped at all. The probe must stat()
    // BEFORE open(): opening a FIFO read-only blocks until a writer
    // appears (and would consume that writer's one open-pairing, so
    // the caller's buffered-fallback open could then block forever).
    struct stat pre = {};
    if (::stat(path.c_str(), &pre) != 0 || !S_ISREG(pre.st_mode) ||
        pre.st_size <= 0)
        return;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return;
    struct stat st = {};
    // Re-check on the open fd: the path may have been swapped between
    // the stat and the open.
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
        ::close(fd);
        return;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference
    if (p == MAP_FAILED)
        return;
#ifdef MADV_SEQUENTIAL
    ::madvise(p, size, MADV_SEQUENTIAL);
#endif
    data_ = static_cast<const std::uint8_t*>(p);
    size_ = size;
}

void
MappedFile::reset()
{
    if (data_ != nullptr)
        ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
}

#else // !CELL_HAVE_MMAP

MappedFile::MappedFile(const std::string&) {}

void
MappedFile::reset()
{
    data_ = nullptr;
    size_ = 0;
}

#endif

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0))
{
}

MappedFile&
MappedFile::operator=(MappedFile&& other) noexcept
{
    if (this != &other) {
        reset();
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
    }
    return *this;
}

} // namespace cell::trace
