/**
 * @file
 * Trace surgery implementation.
 *
 * All three ops walk the record stream with the same per-core replay
 * the analyzer uses (ClockReplay + the monotonic clamp folded in
 * stream order), so placement decisions here agree with
 * TraceModel::build record-for-record. The differential suites
 * (tests/ta/test_surgery_diff.cc, property tests P11*) hold this file
 * to byte-identical analyzer output.
 */

#include "trace/surgery.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "trace/format.h"
#include "trace/replay.h"

namespace cell::trace {
namespace {

constexpr std::uint64_t kNoLimit = ~std::uint64_t{0};
constexpr std::uint64_t kU32Max = 0xFFFFFFFFull;

/**
 * A record the lenient analyzer provably skips and the salvage reader
 * keeps: core 0, ordinary kind, placed at the absolute front of the
 * stream where no core-0 sync precedes it. One is emitted per record
 * the rewrite had to drop (pre-sync, bad core id), so the output's
 * `leniency skipped` count matches the original's.
 */
Record
fillerRecord()
{
    Record r{};
    r.kind = 0;
    r.phase = kPhaseBegin;
    r.core = 0;
    r.timestamp = 0;
    return r;
}

/** Raw timestamp that places at sync_tb + delta under the mapping
 *  (sync_raw, sync_tb). SPE decrementers count down, PPE up. */
std::uint32_t
encodeTs(bool is_spe, std::uint32_t sync_raw, std::uint32_t delta)
{
    return is_spe ? sync_raw - delta : sync_raw + delta;
}

/** One pending Begin (or the SpuStart run slot) of the analyzer's
 *  matcher, tracked with its placed clamped time. */
struct Pending
{
    bool occ = false;
    std::uint64_t t = 0;
    Record rec{};
};

struct MatcherShadow
{
    std::array<Pending, 64> pend{};
    Pending run;

    /** Mirror of buildCoreIntervals' slot updates (ta/intervals.cc):
     *  SpuStart/SpuStop use the run slot regardless of phase, Begins
     *  of pendable ops occupy (and overwrite) their op slot, any other
     *  known-op phase clears the slot. */
    void feed(const OpSemantics& sem, const Record& rec, std::uint64_t t)
    {
        if (rec.kind >= sem.num_known_ops)
            return; // tool record or unknown op: never matched
        if (rec.kind == sem.spu_start) {
            run = Pending{true, t, rec};
            return;
        }
        if (rec.kind == sem.spu_stop) {
            run.occ = false;
            return;
        }
        if (rec.phase == kPhaseBegin) {
            if ((sem.pendable_mask >> rec.kind) & 1)
                pend[rec.kind] = Pending{true, t, rec};
        } else {
            pend[rec.kind].occ = false;
        }
    }

    /** True if a pending began inside [from, to): its interval is a
     *  window member that only materializes later. Mirrors
     *  WindowMatcher::hasWindowPending (ta/query.cc). */
    bool windowPending(std::uint64_t from, std::uint64_t to) const
    {
        for (const Pending& p : pend) {
            if (p.occ && p.t >= from && p.t < to)
                return true;
        }
        return run.occ && run.t >= from && run.t < to;
    }
};

} // namespace

TraceData
slice(const TraceData& data, std::uint64_t from, std::uint64_t to,
      const OpSemantics& sem, const SliceOptions& opt)
{
    if (from > to)
        throw std::invalid_argument("slice: window start exceeds end");
    const std::uint32_t n_cores = data.header.num_spes + 1;

    struct CoreState
    {
        ClockReplay clk;
        std::uint64_t prev = 0;       ///< monotonic clamp carry
        std::uint64_t pre_placed = 0; ///< placed records before entry
        bool entered = false;
        bool done = false;
        std::vector<Record> pre_drops; ///< placed drops before entry
        MatcherShadow match;
    };
    std::vector<CoreState> cores(n_cores);

    std::uint64_t fillers = 0;
    std::vector<Record> preamble; ///< synthetic seeds, all placed < from
    std::vector<Record> kept;

    // Reconstruct the seed state a core carries into the window as a
    // synthetic record preamble: a sync that restores both the clock
    // mapping and the clamp carry, one drop per pre-window drop (the
    // absolute epoch), and a Begin per occupied pending slot (so an
    // in-window End still matches a Begin that started before the
    // window — on both sides the interval starts < from and is
    // filtered). Everything places at the clamp carry, below `from`.
    auto emitPreamble = [&preamble](std::uint16_t core, const CoreState& s,
                                    std::uint32_t sync_raw,
                                    std::uint64_t sync_tb) {
        if (s.pre_placed == 0)
            return; // first placed record is the entry: no seed state
        const bool is_spe = core != 0;
        const std::uint64_t carry = s.prev;
        const std::uint64_t need = carry - sync_tb;
        if (need <= kU32Max) {
            Record sy{};
            sy.kind = kSyncRecord;
            sy.core = core;
            sy.a = sync_raw;
            sy.b = sync_tb;
            sy.timestamp = encodeTs(is_spe, sync_raw,
                                    static_cast<std::uint32_t>(need));
            preamble.push_back(sy);
        } else {
            // The carry is out of 32-bit delta range of the real sync:
            // seed the clamp with a self-mapped sync at the carry,
            // then restore the real mapping (placed at sync_tb, the
            // clamp lifts it back to the carry).
            Record s1{};
            s1.kind = kSyncRecord;
            s1.core = core;
            s1.a = static_cast<std::uint32_t>(carry);
            s1.b = carry;
            s1.timestamp = static_cast<std::uint32_t>(carry);
            preamble.push_back(s1);
            Record s2{};
            s2.kind = kSyncRecord;
            s2.core = core;
            s2.a = sync_raw;
            s2.b = sync_tb;
            s2.timestamp = sync_raw;
            preamble.push_back(s2);
        }
        for (Record d : s.pre_drops) {
            d.timestamp = sync_raw; // places at sync_tb, clamped under from
            preamble.push_back(d);
        }
        for (const Pending& p : s.match.pend) {
            if (!p.occ)
                continue;
            Record b = p.rec;
            b.timestamp = sync_raw;
            preamble.push_back(b);
        }
        if (s.match.run.occ) {
            Record b = s.match.run.rec;
            b.timestamp = sync_raw;
            preamble.push_back(b);
        }
    };

    for (const Record& rec : data.records) {
        if (rec.core >= n_cores) {
            if (!opt.lenient)
                throw std::runtime_error("slice: record with bad core id");
            ++fillers;
            continue;
        }
        CoreState& s = cores[rec.core];
        if (s.done)
            continue;

        // Snapshot the mapping first: if the entry record is itself a
        // sync, the preamble must encode against the mapping in effect
        // *before* it.
        const std::uint32_t raw0 = s.clk.sync_raw;
        const std::uint64_t tb0 = s.clk.sync_tb;

        std::uint64_t t = 0;
        if (!s.clk.feed(rec, t)) {
            if (!opt.lenient)
                throw std::runtime_error(
                    "slice: event before first sync record on core " +
                    std::to_string(rec.core));
            ++fillers;
            continue;
        }
        if (t < s.prev)
            t = s.prev;

        if (!s.entered) {
            if (t < from) {
                s.prev = t;
                s.pre_placed += 1;
                if (rec.kind == kDropRecord)
                    s.pre_drops.push_back(rec);
                s.match.feed(sem, rec, t);
                continue;
            }
            emitPreamble(rec.core, s, raw0, tb0);
            s.entered = true;
        }
        s.prev = t;
        kept.push_back(rec);
        s.match.feed(sem, rec, t);
        // Past the window with nothing window-started still open:
        // every later event and interval start on this core is >= to.
        // Mirrors the windowed-query early stop (ta/query.cc).
        if (t >= to && !s.match.windowPending(from, to))
            s.done = true;
    }

    TraceData out;
    out.header = data.header;
    out.spe_programs = data.spe_programs;
    out.spe_programs.resize(
        std::max<std::size_t>(out.spe_programs.size(),
                              data.header.num_spes));
    out.records.reserve(fillers + preamble.size() + kept.size());
    for (std::uint64_t i = 0; i < fillers; ++i)
        out.records.push_back(fillerRecord());
    out.records.insert(out.records.end(), preamble.begin(), preamble.end());
    out.records.insert(out.records.end(), kept.begin(), kept.end());
    out.header.record_count = out.records.size();
    return out;
}

TraceData
splice(const std::vector<TraceData>& inputs, const SpliceOptions& opt)
{
    if (inputs.empty())
        throw std::invalid_argument("splice: no inputs");
    if (!opt.cuts.empty() && opt.cuts.size() + 1 != inputs.size())
        throw std::invalid_argument(
            "splice: need exactly one cut per junction (inputs - 1)");
    for (std::size_t i = 1; i < opt.cuts.size(); ++i) {
        if (opt.cuts[i] < opt.cuts[i - 1])
            throw std::invalid_argument("splice: cuts must be ascending");
    }
    if (!opt.offsets.empty() && opt.offsets.size() != inputs.size())
        throw std::invalid_argument(
            "splice: offsets must match input count");
    if (opt.align && !opt.offsets.empty())
        throw std::invalid_argument(
            "splice: --align and explicit offsets are exclusive");

    const Header& h0 = inputs[0].header;
    for (const TraceData& in : inputs) {
        if (in.header.core_hz != h0.core_hz ||
            in.header.timebase_divider != h0.timebase_divider)
            throw std::invalid_argument(
                "splice: inputs disagree on clock rate");
        if (!opt.blades && in.header.num_spes != h0.num_spes)
            throw std::invalid_argument(
                "splice: inputs disagree on SPE count (use blades mode)");
    }

    std::vector<std::uint64_t> offsets(inputs.size(), 0);
    if (!opt.offsets.empty())
        offsets = opt.offsets;
    if (opt.align) {
        // Shift every input so all recordings start together at the
        // latest input's start.
        std::vector<std::uint64_t> start(inputs.size(), kNoLimit);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            std::vector<ClockReplay> clk(inputs[i].header.num_spes + 1);
            for (const Record& rec : inputs[i].records) {
                if (rec.core >= clk.size())
                    continue;
                std::uint64_t t = 0;
                if (clk[rec.core].feed(rec, t))
                    start[i] = std::min(start[i], t);
            }
        }
        std::uint64_t ref = 0;
        for (const std::uint64_t s : start) {
            if (s != kNoLimit)
                ref = std::max(ref, s);
        }
        for (std::size_t i = 0; i < inputs.size(); ++i)
            offsets[i] = start[i] == kNoLimit ? 0 : ref - start[i];
    }

    TraceData out;
    out.header = h0;

    // Blades mode: input i's cores move to a disjoint range starting
    // at base[i]; later inputs' PPE streams become SPE-numbered cores.
    std::vector<std::uint16_t> base(inputs.size(), 0);
    if (opt.blades) {
        std::uint32_t spes = inputs[0].header.num_spes;
        for (std::size_t i = 1; i < inputs.size(); ++i) {
            base[i] = static_cast<std::uint16_t>(spes + 1);
            spes += inputs[i].header.num_spes + 1;
        }
        out.header.num_spes = spes;
        out.spe_programs.resize(spes);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const auto& progs = inputs[i].spe_programs;
            const std::uint32_t n = inputs[i].header.num_spes;
            if (i == 0) {
                for (std::uint32_t j = 0; j < n; ++j)
                    out.spe_programs[j] = j < progs.size() ? progs[j] : "";
                continue;
            }
            const std::string tag = "b" + std::to_string(i) + ":";
            out.spe_programs[base[i] - 1u] = tag + "PPE";
            for (std::uint32_t j = 0; j < n; ++j) {
                out.spe_programs[base[i] + j] =
                    tag + (j < progs.size() && !progs[j].empty()
                               ? progs[j]
                               : "spe" + std::to_string(j));
            }
        }
    } else {
        out.spe_programs = inputs[0].spe_programs;
        out.spe_programs.resize(std::max<std::size_t>(
            out.spe_programs.size(), h0.num_spes));
    }

    std::uint64_t fillers = 0;
    std::vector<Record> body;

    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const TraceData& in = inputs[i];
        const std::uint32_t n_cores = in.header.num_spes + 1;
        const std::uint64_t lo =
            !opt.cuts.empty() && i > 0 ? opt.cuts[i - 1] : 0;
        const std::uint64_t hi = !opt.cuts.empty() && i + 1 < inputs.size()
                                     ? opt.cuts[i]
                                     : kNoLimit;

        std::vector<ClockReplay> clk(n_cores);
        std::vector<std::uint64_t> prev(n_cores, 0);
        std::uint64_t dropped = 0; ///< this input's lenient skips

        for (const Record& rec : in.records) {
            if (rec.core >= n_cores) {
                if (!opt.lenient)
                    throw std::runtime_error(
                        "splice: record with bad core id in input " +
                        std::to_string(i));
                ++dropped;
                continue;
            }
            std::uint64_t t = 0;
            const bool placed = clk[rec.core].feed(rec, t);
            if (placed) {
                t = std::max(t, prev[rec.core]);
                prev[rec.core] = t;
            }

            if (!placed) {
                if (opt.blades) {
                    // Keep verbatim: it stays pre-sync on the remapped
                    // core and the analyzer skips it there too.
                    Record r = rec;
                    r.core = static_cast<std::uint16_t>(base[i] + rec.core);
                    body.push_back(r);
                    continue;
                }
                if (!opt.lenient)
                    throw std::runtime_error(
                        "splice: event before first sync record in input " +
                        std::to_string(i));
                ++dropped;
                continue;
            }
            if (t < lo || t >= hi)
                continue; // outside this input's band

            Record r = rec;
            if (opt.blades) {
                r.core = static_cast<std::uint16_t>(base[i] + rec.core);
                if (i > 0 && rec.core == 0) {
                    // The remapped PPE stream now decodes as a
                    // down-counter; reflect the raw stamp around the
                    // sync point so the delta is preserved.
                    r.timestamp = 2 * clk[0].sync_raw - rec.timestamp;
                }
            }
            if (r.kind == kSyncRecord)
                r.b += offsets[i];
            body.push_back(r);
        }
        // Each input of a band splice typically carries the whole
        // original's skip accounting (slices replicate it), so the
        // shared-core merge takes the max, not the sum; disjoint-core
        // blades add up.
        if (opt.blades)
            fillers += dropped;
        else
            fillers = std::max(fillers, dropped);
    }

    out.records.reserve(fillers + body.size());
    for (std::uint64_t i = 0; i < fillers; ++i)
        out.records.push_back(fillerRecord());
    out.records.insert(out.records.end(), body.begin(), body.end());
    out.header.record_count = out.records.size();
    return out;
}

TraceData
filter(const TraceData& data, const FilterOptions& opt)
{
    const std::uint32_t n_cores = data.header.num_spes + 1;
    std::vector<char> keep_core(n_cores, opt.cores.empty() ? 1 : 0);
    for (const std::uint16_t c : opt.cores) {
        if (c >= n_cores)
            throw std::invalid_argument(
                "filter: core id " + std::to_string(c) +
                " out of range (trace has cores 0.." +
                std::to_string(n_cores - 1) + ")");
        keep_core[c] = 1;
    }

    std::vector<ClockReplay> clk(n_cores);
    std::vector<std::uint64_t> prev(n_cores, 0);
    std::uint64_t fillers = 0;
    std::vector<Record> body;

    for (const Record& rec : data.records) {
        if (rec.core >= n_cores) {
            if (!opt.lenient)
                throw std::runtime_error("filter: record with bad core id");
            ++fillers;
            continue;
        }
        std::uint64_t t = 0;
        if (!clk[rec.core].feed(rec, t)) {
            if (!opt.lenient)
                throw std::runtime_error(
                    "filter: event before first sync record on core " +
                    std::to_string(rec.core));
            ++fillers; // skipped in the original analysis too
            continue;
        }
        t = std::max(t, prev[rec.core]);
        prev[rec.core] = t;

        if (!keep_core[rec.core])
            continue;
        // Tool records (sync/flush/drop, >= 64) are structurally
        // unmaskable: dropping a sync or drop marker would corrupt the
        // clock mapping / loss accounting of everything after it.
        if (rec.kind < 64 && !((opt.kind_mask >> rec.kind) & 1))
            continue;

        // Re-encode the timestamp so this record still places at its
        // original clamped time: a dropped neighbour may have carried
        // the clamp maximum, and the survivors must not move.
        const std::uint64_t delta = t - clk[rec.core].sync_tb;
        if (delta > kU32Max)
            throw std::runtime_error(
                "filter: clamp carry out of 32-bit delta range on core " +
                std::to_string(rec.core) + "; cannot re-encode timestamp");
        Record r = rec;
        r.timestamp = encodeTs(rec.core != 0, clk[rec.core].sync_raw,
                               static_cast<std::uint32_t>(delta));
        body.push_back(r);
    }

    TraceData out;
    out.header = data.header;
    out.spe_programs = data.spe_programs;
    out.spe_programs.resize(std::max<std::size_t>(
        out.spe_programs.size(), data.header.num_spes));
    out.records.reserve(fillers + body.size());
    for (std::uint64_t i = 0; i < fillers; ++i)
        out.records.push_back(fillerRecord());
    out.records.insert(out.records.end(), body.begin(), body.end());
    out.header.record_count = out.records.size();
    return out;
}

TraceData
delay(const TraceData& data, const DelayOptions& opt)
{
    const std::uint32_t n_cores = data.header.num_spes + 1;
    if (opt.core >= static_cast<int>(n_cores))
        throw std::invalid_argument(
            "delay: core id " + std::to_string(opt.core) +
            " out of range (trace has cores 0.." +
            std::to_string(n_cores - 1) + ")");
    const auto applies = [&opt](std::uint16_t core, std::uint64_t t) {
        return (opt.core < 0 || core == opt.core) && t >= opt.at;
    };

    std::vector<ClockReplay> clk(n_cores);
    std::vector<std::uint64_t> prev(n_cores, 0);

    TraceData out;
    out.header = data.header;
    out.spe_programs = data.spe_programs;
    out.spe_programs.resize(std::max<std::size_t>(
        out.spe_programs.size(), data.header.num_spes));
    out.records.reserve(data.records.size());

    for (const Record& rec : data.records) {
        if (rec.core >= n_cores) {
            if (!opt.lenient)
                throw std::runtime_error("delay: record with bad core id");
            out.records.push_back(rec); // lenient analyzers skip it here too
            continue;
        }
        std::uint64_t t = 0;
        if (!clk[rec.core].feed(rec, t)) {
            if (!opt.lenient)
                throw std::runtime_error(
                    "delay: event before first sync record on core " +
                    std::to_string(rec.core));
            out.records.push_back(rec);
            continue;
        }
        t = std::max(t, prev[rec.core]);
        prev[rec.core] = t;

        // Shift is monotone per core (once t >= at, it stays there), so
        // shifted placements never violate the monotonic clamp and the
        // output analysis sees exactly t' = t + delta past the mark.
        const std::uint64_t tt = t + (applies(rec.core, t) ? opt.delta : 0);
        Record r = rec;
        if (rec.kind == kSyncRecord && applies(rec.core, clk[rec.core].sync_tb))
            r.b = rec.b + opt.delta;
        // Re-encode against the *output* mapping: the input's current
        // sync shifted by the same rule. tt >= out_tb always holds
        // because t >= sync_tb and the shift is monotone in t.
        const std::uint64_t out_tb =
            clk[rec.core].sync_tb +
            (applies(rec.core, clk[rec.core].sync_tb) ? opt.delta : 0);
        const std::uint64_t d = tt - out_tb;
        if (d > kU32Max)
            throw std::runtime_error(
                "delay: shifted delta out of 32-bit range on core " +
                std::to_string(rec.core) + "; reduce --delta");
        r.timestamp = encodeTs(rec.core != 0, clk[rec.core].sync_raw,
                               static_cast<std::uint32_t>(d));
        out.records.push_back(r);
    }
    out.header.record_count = out.records.size();
    return out;
}

} // namespace cell::trace
