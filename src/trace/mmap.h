/**
 * @file
 * Read-only memory mapping of regular files.
 *
 * MappedFile maps a file with mmap(2) where the platform supports it
 * and the target is a regular file with a real size. Pseudo-files
 * (/proc entries report st_size 0), FIFOs, sockets, and character
 * devices are rejected — valid() stays false and the caller falls
 * back to buffered stream I/O. The mapping is advised for sequential
 * access, which is the trace reader's pattern.
 *
 * The object is move-only; the mapping lives until destruction.
 */

#ifndef CELL_TRACE_MMAP_H
#define CELL_TRACE_MMAP_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace cell::trace {

class MappedFile
{
  public:
    MappedFile() = default;
    /** Attempt to map @p path read-only. On any failure — not a
     *  regular file, zero size, mmap unsupported or denied — the
     *  object is simply !valid(); never throws. */
    explicit MappedFile(const std::string& path);
    ~MappedFile();

    MappedFile(MappedFile&& other) noexcept;
    MappedFile& operator=(MappedFile&& other) noexcept;
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;

    bool valid() const { return data_ != nullptr; }
    const std::uint8_t* data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    void reset();

    const std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace cell::trace

#endif // CELL_TRACE_MMAP_H
