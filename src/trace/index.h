/**
 * @file
 * Optional v2 footer index for PDT trace files.
 *
 * The v1 byte stream (header, name table, record region) is untouched
 * — the file header keeps version 1 and every v1 reader keeps working,
 * because the strict reader reads exactly header.record_count records
 * and ignores trailing bytes, and the salvage reader clamps to the
 * record count it can trust. The index is appended AFTER the record
 * region:
 *
 *   IndexHeader                     (64 bytes)
 *   IndexCoreSummary x num_cores    (40 bytes each)
 *   IndexEntry x entry_count        (48 bytes each, grouped per core)
 *   IndexTrailer                    (24 bytes, at EOF)
 *
 * Per core, one IndexEntry is emitted every `stride` records of that
 * core's stream. An entry snapshots everything a windowed query needs
 * to resume the analyzer's per-record replay mid-stream with EXACTLY
 * the state a full scan would have reached:
 *
 *   - the clock mapping (sync_raw/sync_tb/have_sync) and drop epoch,
 *   - `tick`, the maximum reconstructed (clamped) event time of this
 *     core BEFORE the entry's block — both the monotonic-clamp seed
 *     and the seek key (the latest entry with tick < window start is
 *     the correct resume point),
 *   - `open_begins`, a mechanical bitmask of record kinds whose most
 *     recent occurrence was a Begin. The query layer intersects it
 *     with the pending-capable ops to reconstruct the interval
 *     matcher's one-slot-per-op pending state without storing event
 *     payloads: a pre-entry pending whose End falls inside the block
 *     becomes an interval that STARTED before the window, so the
 *     matcher only needs to know the slot is occupied (consume the
 *     End, emit nothing). One non-mechanical rule: SpuStop — a
 *     Begin-only marker like SpuStart — clears SpuStart's bit, since
 *     it closes the run interval.
 *
 * The trailer carries an FNV-1a 64 checksum of the index region and
 * the region's size, so a reader seeks EOF-24, validates, and walks
 * back. ANY mismatch — checksum, structural inconsistency against the
 * file header, lying offsets or counts — invalidates the whole index
 * and the caller falls back to the v1 full-scan path; a bad index can
 * cost time but never a wrong answer.
 */

#ifndef CELL_TRACE_INDEX_H
#define CELL_TRACE_INDEX_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/format.h"

namespace cell::trace {

/** Index magic: "CBEPDTIX" (the trailer carries it too). */
constexpr std::uint64_t kIndexMagic = 0x5849544450454243ULL;

/** Index format version (the FILE header stays at version 1). */
constexpr std::uint32_t kIndexVersion = 2;

/** Default records-per-core between index entries. */
constexpr std::uint32_t kDefaultIndexStride = 4096;

/** IndexEntry.flags: the core had seen a sync record before the entry. */
constexpr std::uint16_t kEntryHaveSync = 1;

/** One per-core resume point. */
struct IndexEntry
{
    /** Max clamped event time of this core before this block (0 if
     *  none): monotonic-clamp seed and window seek key. */
    std::uint64_t tick = 0;
    /** Absolute file offset of the block's first record. */
    std::uint64_t byte_offset = 0;
    std::uint64_t sync_tb = 0;
    /** Bit k set: the last kind-k (k < 64) record before this entry
     *  was a Begin (SpuStop clears SpuStart's bit — see file docs). */
    std::uint64_t open_begins = 0;
    std::uint32_t sync_raw = 0;
    /** Drop epoch entering the block. */
    std::uint32_t epoch = 0;
    /** This core's records in [this entry, next entry of this core). */
    std::uint32_t record_count = 0;
    std::uint16_t core = 0;
    std::uint16_t flags = 0;

    bool operator==(const IndexEntry&) const = default;
};
static_assert(sizeof(IndexEntry) == 48, "index entries are 48 bytes");

/** Whole-stream summary of one core. */
struct IndexCoreSummary
{
    /** Records with rec.core == this core (including pre-sync ones). */
    std::uint64_t total_records = 0;
    /** Absolute offset of the core's first record (0 if none). */
    std::uint64_t begin_offset = 0;
    /** One past the core's last record (0 if none). */
    std::uint64_t end_offset = 0;
    /** Final clamped event time (0 if no placeable events). */
    std::uint64_t max_tick = 0;
    std::uint32_t first_entry = 0;
    std::uint32_t num_entries = 0;

    bool operator==(const IndexCoreSummary&) const = default;
};
static_assert(sizeof(IndexCoreSummary) == 40, "core summaries are 40 bytes");

struct IndexHeader
{
    std::uint64_t magic = kIndexMagic;
    std::uint32_t version = kIndexVersion;
    std::uint32_t stride = 0;
    /** Must equal the file header's record_count. */
    std::uint64_t record_count = 0;
    /** Absolute offset of the first record (validated vs the file). */
    std::uint64_t record_region_offset = 0;
    std::uint32_t num_cores = 0; ///< num_spes + 1
    std::uint32_t entry_count = 0;
    /** Records a lenient replay skipped (no sync yet on their core).
     *  Nonzero means a STRICT analysis of this trace throws — the
     *  query layer must take the full-scan path to reproduce that. */
    std::uint64_t presync_records = 0;
    /** Records naming an impossible core (same strictness caveat). */
    std::uint64_t bad_core_records = 0;
    std::uint64_t reserved = 0;

    bool operator==(const IndexHeader&) const = default;
};
static_assert(sizeof(IndexHeader) == 64, "index header is 64 bytes");

struct IndexTrailer
{
    /** FNV-1a 64 over header + summaries + entries bytes. */
    std::uint64_t checksum = 0;
    /** Bytes from IndexHeader start to trailer start. */
    std::uint64_t index_size = 0;
    std::uint64_t magic = kIndexMagic;
};
static_assert(sizeof(IndexTrailer) == 24, "index trailer is 24 bytes");

/** A parsed (and validated) index. */
struct TraceIndex
{
    IndexHeader header;
    std::vector<IndexCoreSummary> cores;
    /** Grouped per core: cores[c] owns
     *  entries[first_entry .. first_entry + num_entries). */
    std::vector<IndexEntry> entries;

    /** Usable for strict-semantics queries: a strict full scan of the
     *  indexed trace would not have thrown. */
    bool strictClean() const
    {
        return header.presync_records == 0 && header.bad_core_records == 0;
    }
};

/** Outcome of an index read. */
struct IndexReadResult
{
    /** A trailer with the index magic was found at EOF. */
    bool present = false;
    /** The index passed checksum + every structural check. */
    bool valid = false;
    /** Why an index-shaped footer was rejected (diagnostics). */
    std::string reason;
    TraceIndex index;
};

/** FNV-1a 64 over raw bytes (the index checksum). */
std::uint64_t fnv1a64Bytes(const void* data, std::size_t len);

/**
 * FNV-1a 64 folded over 8-byte little-endian lanes: four independent
 * FNV chains stride the input 32 bytes at a time, the lane digests and
 * any tail bytes fold into one final chain, and the total length is
 * mixed last so prefixes of zero blocks cannot collide. Roughly an
 * order of magnitude faster than the byte-serial form on long inputs —
 * used for columnar v3 block payloads, where the checksum would
 * otherwise dominate decode time (BlockHeader::payload selects the
 * algorithm; interleaved blocks keep fnv1a64Bytes for back-compat).
 */
std::uint64_t fnv1a64Words(const void* data, std::size_t len);

/** Mechanical open-begin mask update (see IndexEntry::open_begins):
 *  shared by the index builder and the v3 block seeds, which snapshot
 *  the same pending state per block (trace/block.h). */
void updateOpenBegins(std::uint64_t& mask, const Record& rec);

/**
 * Build the index for @p trace as it will appear on disk. @p header
 * must be the effective on-disk header (writer-normalized num_spes /
 * record_count) and @p record_region_offset the absolute offset of the
 * first record. @p stride is clamped to >= 1.
 */
TraceIndex buildIndex(const TraceData& trace, const Header& header,
                      std::uint64_t record_region_offset,
                      std::uint32_t stride);

/** Serialize header + summaries + entries + trailer. */
std::vector<std::uint8_t> serializeIndex(const TraceIndex& index);

/**
 * Look for a v2 footer index. @p is must be seekable and positioned at
 * the start of the trace stream; the position is restored. Never
 * throws on damaged input: a missing/truncated/corrupt index reports
 * present/valid flags instead (the full-scan path is the fallback).
 */
IndexReadResult readIndex(std::istream& is);

/** Same, for the trace file at @p path. */
IndexReadResult readIndexFile(const std::string& path);

/** Same, for an in-memory trace image. */
IndexReadResult readIndexBuffer(const std::vector<std::uint8_t>& buf);

} // namespace cell::trace

#endif // CELL_TRACE_INDEX_H
