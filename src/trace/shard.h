/**
 * @file
 * Sharded trace reading: split one trace file into contiguous
 * fixed-record-range shards on the 32-byte record stride, so multiple
 * workers can ingest and analyze the record region concurrently.
 *
 * A ShardPlan is built from the file header and name table alone (one
 * small sequential read); each shard is then a (first_record,
 * num_records, byte_offset) triple any worker can read independently
 * with its own stream. Shards always partition the record region
 * exactly — concatenating shard reads in index order reproduces the
 * byte sequence a serial read() would have produced, which is what the
 * parallel analyzer's determinism contract rests on.
 *
 * Boundary validation reuses the salvage reader's resync predicate
 * (plausibleRecord): interior shard boundaries are probed and, when the
 * record at a proposed boundary looks implausible (possible stride
 * damage), the boundary slides forward by whole records — within a
 * small window — until a plausible record starts the shard. Sliding a
 * boundary only moves records between adjacent shards; the partition,
 * and therefore the merged result, is unchanged. On an undamaged trace
 * this is a no-op.
 *
 * Sharding requires a seekable source. A pipe cannot be sharded — the
 * plan would need the end offset, and workers could not seek — so
 * planShards() rejects non-seekable streams with a clear error instead
 * of misbehaving; stream input must use the serial reader.
 */

#ifndef CELL_TRACE_SHARD_H
#define CELL_TRACE_SHARD_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/block.h"
#include "trace/format.h"

namespace cell::trace {

/** One contiguous record range of a trace file. */
struct Shard
{
    std::uint64_t first_record = 0; ///< index into the record region
    std::uint64_t num_records = 0;
    /** Absolute file offset of the first record — VIRTUAL (as if the
     *  region were plain v1 records) when the plan is v3. */
    std::uint64_t byte_offset = 0;
    /** v3 only: the whole blocks this shard decodes. */
    std::uint64_t first_block = 0;
    std::uint64_t num_blocks = 0;
};

/** How to split a record region. */
struct ShardOptions
{
    /** Desired shard count; 0 derives one from hardware concurrency. */
    unsigned target_shards = 0;
    /** Never split below this many records per shard (merge overhead
     *  would beat the parallelism). */
    std::uint64_t min_records_per_shard = 4096;
    /** Records examined past a suspect boundary before giving up and
     *  keeping it (salvage-style resync window). */
    unsigned boundary_resync_window = 8;
};

/** The sharding of one trace file. */
struct ShardPlan
{
    Header header;
    std::vector<std::string> spe_programs;
    /** Absolute file offset of the first record. */
    std::uint64_t record_region_offset = 0;
    /** Total records (== header.record_count, validated vs file size). */
    std::uint64_t record_count = 0;
    /** Boundaries moved by resync validation (0 on a healthy trace). */
    std::uint64_t boundaries_adjusted = 0;
    /** The shards, in record order; they partition [0, record_count). */
    std::vector<Shard> shards;

    /** The file's record region is v3 compressed blocks: shards fall
     *  on block boundaries (blocks are the smallest independently
     *  decodable unit), so the partition — and the merged result —
     *  is byte-identical to a serial decode. header.version is
     *  normalized to 1 either way; this flag carries the container. */
    bool v3 = false;
    /** v3 only: records per block (last block may be short). */
    std::uint32_t block_capacity = 0;
    /** v3 only: the validated block directory readShardInto() seeks
     *  through (rebuilt from block headers if the on-disk directory
     *  is damaged — see loadBlockDirectory). */
    std::vector<BlockDirEntry> blocks;
};

/**
 * Parse header + name table and plan shards over the record region.
 * @throws std::runtime_error on bad magic, version mismatch, a record
 * count that exceeds the bytes present, or — specifically — a
 * non-seekable stream, which cannot be sharded.
 */
ShardPlan planShards(std::istream& is, const ShardOptions& opt = {});

/** Plan shards for the trace file at @p path. */
ShardPlan planShardsFile(const std::string& path,
                         const ShardOptions& opt = {});

/** Read shard @p index into @p dst (caller provides
 *  plan.shards[index].num_records records of space). Seeks; any stream
 *  may be used, including one private to a worker thread. */
void readShardInto(std::istream& is, const ShardPlan& plan,
                   std::size_t index, Record* dst);

/** Convenience: read shard @p index into a fresh vector. */
std::vector<Record> readShard(std::istream& is, const ShardPlan& plan,
                              std::size_t index);

} // namespace cell::trace

#endif // CELL_TRACE_SHARD_H
