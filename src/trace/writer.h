/**
 * @file
 * Trace serialization.
 */

#ifndef CELL_TRACE_WRITER_H
#define CELL_TRACE_WRITER_H

#include <iosfwd>
#include <string>

#include "trace/format.h"

namespace cell::trace {

/** Serialization knobs. */
struct WriteOptions
{
    /**
     * Records-per-core between v2 footer index entries; 0 (the
     * default) writes a plain v1 trace, byte-identical to what every
     * earlier writer produced. Nonzero appends the self-checksummed
     * index footer AFTER the record region — the file header stays at
     * version 1 and v1 readers (strict and salvage) ignore the footer,
     * so the index is strictly additive. See trace/index.h.
     */
    std::uint32_t index_stride = 0;

    /**
     * Write the record region as v3 compressed blocks (file header
     * version 3): independently decodable, self-checksummed,
     * delta-encoded varint blocks — typically 3-5x smaller than the
     * fixed 32-byte records. Readers decode transparently and every
     * analysis output stays byte-identical to the v1 file of the same
     * trace. Composes with index_stride: the footer index addresses
     * records through VIRTUAL v1 offsets, so indexed window queries
     * keep working on compressed files. See trace/block.h.
     */
    bool compress = false;

    /** Records per compressed block; 0 picks kDefaultBlockRecords
     *  (2048 records = 64 KiB uncompressed). Ignored unless compress. */
    std::uint32_t block_records = 0;

    /**
     * Write blocks in the original interleaved payload layout instead
     * of the columnar streams the writer now defaults to. Back-compat
     * escape hatch (and test fixture generator): both layouts decode
     * to identical records and may even be mixed within one file, the
     * columnar one is just faster to decode. Ignored unless compress.
     */
    bool legacy_payload = false;
};

/** Serialize @p trace to a binary stream. @throws std::runtime_error. */
void write(std::ostream& os, const TraceData& trace,
           const WriteOptions& opt = {});

/** Serialize @p trace to @p path. @throws std::runtime_error. */
void writeFile(const std::string& path, const TraceData& trace,
               const WriteOptions& opt = {});

/** Serialize to an in-memory byte buffer. */
std::vector<std::uint8_t> writeBuffer(const TraceData& trace,
                                      const WriteOptions& opt = {});

} // namespace cell::trace

#endif // CELL_TRACE_WRITER_H
