/**
 * @file
 * Trace serialization.
 */

#ifndef CELL_TRACE_WRITER_H
#define CELL_TRACE_WRITER_H

#include <iosfwd>
#include <string>

#include "trace/format.h"

namespace cell::trace {

/** Serialize @p trace to a binary stream. @throws std::runtime_error. */
void write(std::ostream& os, const TraceData& trace);

/** Serialize @p trace to @p path. @throws std::runtime_error. */
void writeFile(const std::string& path, const TraceData& trace);

/** Serialize to an in-memory byte buffer. */
std::vector<std::uint8_t> writeBuffer(const TraceData& trace);

} // namespace cell::trace

#endif // CELL_TRACE_WRITER_H
