/**
 * @file
 * Trace surgery: slice / splice / filter rewrites over PDT traces.
 *
 * The paper's methodology needs traces of the right shape — a window
 * around a phenomenon, a multi-blade merge, a per-core view — and the
 * SDK never shipped tools to make them. These ops rewrite record
 * streams while preserving the replay semantics the analyzer depends
 * on (src/trace/replay.h), each backed by a differential invariant:
 *
 *  - slice(T, from, to): a standalone trace whose windowed report over
 *    [from, to) is byte-identical to the same windowed query on T.
 *    Seed state at the window entry (clock mapping, monotonic-clamp
 *    carry, drop epoch, open Begins) is reconstructed as a synthetic
 *    preamble of sync / drop / Begin records placed before the window.
 *  - splice(inputs, cuts): band-stitch per-trace time ranges back into
 *    one trace; splice(slice(T,s,m), slice(T,m,e), cut=m) round-trips.
 *    With blades mode, inputs keep disjoint core ranges instead (the
 *    multi-blade scenario), with per-input clock offsets.
 *  - filter(T, cores/kinds): drop cores or event-kind groups while
 *    re-encoding timestamps so every surviving record keeps its
 *    original clamped placement; analysis of the filtered trace equals
 *    the restriction of the original analysis.
 *
 * Lenient inputs are supported: records the lenient analyzer skips
 * (pre-sync, bad core id) are replaced by front-of-stream filler
 * records that are themselves skipped, so the output's leniency
 * accounting matches the original's. See docs/SURGERY.md.
 */

#ifndef CELL_TRACE_SURGERY_H
#define CELL_TRACE_SURGERY_H

#include <cstdint>
#include <vector>

#include "trace/reader.h"

namespace cell::trace {

/**
 * The slice preamble must re-open Begins that were pending at window
 * entry, which requires knowing which ops the analyzer's matcher keeps
 * a pending slot for. That knowledge lives above this library (the
 * analyzer owns op classification), so callers inject it;
 * ta::surgeryOpSemantics() is the canonical provider.
 */
struct OpSemantics
{
    /** Bit k set: a Begin of kind k occupies pending slot k. */
    std::uint64_t pendable_mask = 0;
    /** Record kinds of the dedicated run slot (0xFF = none). */
    std::uint8_t spu_start = 0xFF;
    std::uint8_t spu_stop = 0xFF;
    /** Kinds >= this (and < kSyncRecord) are unknown ops: placed as
     *  events but never matched into intervals. */
    std::uint8_t num_known_ops = 0;
};

struct SliceOptions
{
    /** Tolerate pre-sync / bad-core records (replaced by fillers that
     *  keep the lenient skip count identical). Strict mode throws on
     *  them, exactly like TraceModel::build. */
    bool lenient = false;
};

/**
 * Cut [from, to) out of @p data as a standalone trace. Windowed
 * queries over [from, to) on the result match the original's
 * byte-for-byte (events, intervals, epochs, leniency accounting).
 */
TraceData slice(const TraceData& data, std::uint64_t from, std::uint64_t to,
                const OpSemantics& sem, const SliceOptions& opt = {});

struct SpliceOptions
{
    /**
     * Band cut points, one fewer than inputs (or empty for plain
     * concatenation): input i contributes only records whose placed
     * clamped time t satisfies cuts[i-1] <= t < cuts[i] (first band
     * starts at 0, last is unbounded). This is what makes
     * splice(slice(T,s,m), slice(T,m,e)) round-trip: the cut drops
     * slice A's resolution tail and slice B's synthetic preamble.
     */
    std::vector<std::uint64_t> cuts;
    /** Per-input timebase shift added to every sync record's tb (and
     *  so to every placed time). Empty = no shift. */
    std::vector<std::uint64_t> offsets;
    /** Shift every input so all start at the latest input's start
     *  (computes offsets; mutually exclusive with explicit offsets). */
    bool align = false;
    /** Multi-blade merge: input i's cores are remapped to a disjoint
     *  range (input 0 keeps its ids; later inputs' PPE cores become
     *  SPE-numbered cores with down-counter timestamp encoding). */
    bool blades = false;
    bool lenient = false;
};

/** Merge @p inputs into one trace; see SpliceOptions for the modes. */
TraceData splice(const std::vector<TraceData>& inputs,
                 const SpliceOptions& opt = {});

struct FilterOptions
{
    /** Cores to keep (0 = PPE, 1+i = SPE i). Empty = all. */
    std::vector<std::uint16_t> cores;
    /** Bit k set: records of kind k (< 64) are kept. Tool records
     *  (sync / flush / drop) are structurally unmaskable and always
     *  survive — dropping them would corrupt the clock replay. */
    std::uint64_t kind_mask = ~0ull;
    bool lenient = false;
};

/**
 * Rewrite @p data keeping only the selected cores / kinds. Surviving
 * records' timestamps are re-encoded to their original clamped
 * placement, so removing a record never moves the ones that remain.
 */
TraceData filter(const TraceData& data, const FilterOptions& opt = {});

struct DelayOptions
{
    /** Core to perturb (0 = PPE, 1+i = SPE i); -1 = every core. */
    int core = -1;
    /** Placed clamped times >= this tick are shifted. */
    std::uint64_t at = 0;
    /** Ticks added to every shifted placement. */
    std::uint64_t delta = 0;
    /** Tolerate pre-sync / bad-core records: they are kept verbatim
     *  (still skipped by the lenient analyzer, in the same spots), so
     *  the leniency accounting is unchanged. Strict mode throws. */
    bool lenient = false;
};

/**
 * The differential engine's perturbation primitive: re-encode @p data
 * so every record on the selected core(s) whose placed clamped time t
 * satisfies t >= at lands at t + delta instead, while records before
 * `at` keep their exact placement. An interval spanning `at` grows by
 * exactly delta; everything earlier is byte-identical under analysis —
 * which is what lets the perturb-and-localize suites assert *where* a
 * diff must localize. Record order, counts, epochs and loss accounting
 * are untouched.
 */
TraceData delay(const TraceData& data, const DelayOptions& opt = {});

} // namespace cell::trace

#endif // CELL_TRACE_SURGERY_H
