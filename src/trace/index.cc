/**
 * @file
 * v2 footer index: builder, serializer, validating reader.
 *
 * The reader is deliberately paranoid: the index duplicates facts the
 * record region already encodes, so every duplicated fact is checked
 * against the file (record counts, region offsets, per-core entry
 * partitioning, offset alignment and monotonicity, stride arithmetic)
 * on top of the checksum. Rejection is soft — the caller falls back to
 * the v1 full scan — so the worst a corrupted or lying index can do is
 * waste the seek it was supposed to save.
 */

#include "trace/index.h"

#include <cstring>
#include <fstream>
#include <istream>

#include "rt/hooks.h"
#include "trace/block.h"
#include "trace/replay.h"

namespace cell::trace {

/** Mechanical open-begin tracking for one core's stream: bit k set
 *  when the most recent kind-k record was a Begin. SpuStop (a
 *  Begin-only marker, like SpuStart) closes the run interval, so it
 *  clears SpuStart's bit instead of setting its own. */
void
updateOpenBegins(std::uint64_t& mask, const Record& rec)
{
    if (rec.kind >= 64)
        return; // tool records (and junk kinds) never open intervals
    constexpr auto kStart = static_cast<std::uint8_t>(rt::ApiOp::SpuStart);
    constexpr auto kStop = static_cast<std::uint8_t>(rt::ApiOp::SpuStop);
    const std::uint64_t bit = std::uint64_t{1} << rec.kind;
    if (rec.kind == kStop) {
        mask &= ~(std::uint64_t{1} << kStart);
        return;
    }
    // The interval matcher treats ANY SpuStart event as the run start,
    // phase ignored (it is a Begin-only marker); mirror that here or a
    // stray End-phase SpuStart would hide a live run from the mask.
    if (rec.kind == kStart || rec.phase == kPhaseBegin)
        mask |= bit;
    else
        mask &= ~bit;
}

std::uint64_t
fnv1a64Bytes(const void* data, std::size_t len)
{
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

/** Load an 8-byte little-endian word (free on LE hosts). */
inline std::uint64_t
loadLe64(const unsigned char* p)
{
    std::uint64_t w;
    std::memcpy(&w, p, sizeof(w));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    w = __builtin_bswap64(w);
#endif
    return w;
}

} // namespace

std::uint64_t
fnv1a64Words(const void* data, std::size_t len)
{
    constexpr std::uint64_t kBasis = 0xcbf29ce484222325ULL;
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    const auto* p = static_cast<const unsigned char*>(data);
    // Four chains seeded basis+lane so identical lanes stay distinct;
    // independent multiplies keep the carried dependency off the
    // critical path (the serial form is one mul per BYTE).
    std::uint64_t h0 = kBasis, h1 = kBasis + 1;
    std::uint64_t h2 = kBasis + 2, h3 = kBasis + 3;
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        h0 = (h0 ^ loadLe64(p + i)) * kPrime;
        h1 = (h1 ^ loadLe64(p + i + 8)) * kPrime;
        h2 = (h2 ^ loadLe64(p + i + 16)) * kPrime;
        h3 = (h3 ^ loadLe64(p + i + 24)) * kPrime;
    }
    std::uint64_t h = kBasis;
    h = (h ^ h0) * kPrime;
    h = (h ^ h1) * kPrime;
    h = (h ^ h2) * kPrime;
    h = (h ^ h3) * kPrime;
    for (; i < len; ++i)
        h = (h ^ p[i]) * kPrime;
    h = (h ^ static_cast<std::uint64_t>(len)) * kPrime;
    return h;
}

TraceIndex
buildIndex(const TraceData& trace, const Header& header,
           std::uint64_t record_region_offset, std::uint32_t stride)
{
    if (stride == 0)
        stride = 1;

    TraceIndex idx;
    idx.header.stride = stride;
    idx.header.record_count = header.record_count;
    idx.header.record_region_offset = record_region_offset;
    const std::uint32_t n_cores = header.num_spes + 1;
    idx.header.num_cores = n_cores;

    struct CoreBuild
    {
        ClockReplay clk;
        std::uint64_t clamp = 0; ///< max clamped event time so far
        std::uint64_t open = 0;  ///< open-begin mask
        std::uint64_t seen = 0;  ///< this core's records so far
        std::uint64_t begin_offset = 0;
        std::uint64_t end_offset = 0;
        std::vector<IndexEntry> entries;
    };
    std::vector<CoreBuild> cores(n_cores);

    // One pass in stream order, replaying exactly what the analyzer's
    // lenient serial loop does (TraceModel::build): the snapshot taken
    // every `stride` records per core is therefore the exact state a
    // full scan carries into that record.
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        const Record& rec = trace.records[i];
        const std::uint64_t off =
            record_region_offset + i * sizeof(Record);
        if (rec.core >= n_cores) {
            idx.header.bad_core_records += 1;
            continue;
        }
        CoreBuild& c = cores[rec.core];
        if (c.seen % stride == 0) {
            IndexEntry e;
            e.tick = c.clamp;
            e.byte_offset = off;
            e.sync_tb = c.clk.sync_tb;
            e.open_begins = c.open;
            e.sync_raw = c.clk.sync_raw;
            e.epoch = c.clk.epoch;
            e.core = rec.core;
            e.flags = c.clk.have_sync ? kEntryHaveSync : 0;
            c.entries.push_back(e);
        }
        c.entries.back().record_count += 1;
        if (c.seen == 0)
            c.begin_offset = off;
        c.end_offset = off + sizeof(Record);
        c.seen += 1;

        std::uint64_t t = 0;
        if (!c.clk.feed(rec, t)) {
            idx.header.presync_records += 1;
            continue;
        }
        if (t < c.clamp)
            t = c.clamp;
        c.clamp = t;
        updateOpenBegins(c.open, rec);
    }

    idx.cores.resize(n_cores);
    std::uint32_t next_entry = 0;
    for (std::uint32_t c = 0; c < n_cores; ++c) {
        IndexCoreSummary& s = idx.cores[c];
        s.total_records = cores[c].seen;
        s.begin_offset = cores[c].begin_offset;
        s.end_offset = cores[c].end_offset;
        s.max_tick = cores[c].clamp;
        s.first_entry = next_entry;
        s.num_entries = static_cast<std::uint32_t>(cores[c].entries.size());
        next_entry += s.num_entries;
        idx.entries.insert(idx.entries.end(), cores[c].entries.begin(),
                           cores[c].entries.end());
    }
    idx.header.entry_count = next_entry;
    return idx;
}

std::vector<std::uint8_t>
serializeIndex(const TraceIndex& index)
{
    const std::size_t body = sizeof(IndexHeader) +
                             index.cores.size() * sizeof(IndexCoreSummary) +
                             index.entries.size() * sizeof(IndexEntry);
    std::vector<std::uint8_t> out(body + sizeof(IndexTrailer));
    std::uint8_t* p = out.data();
    auto append = [&p](const void* src, std::size_t n) {
        std::memcpy(p, src, n);
        p += n;
    };
    append(&index.header, sizeof(IndexHeader));
    if (!index.cores.empty())
        append(index.cores.data(),
               index.cores.size() * sizeof(IndexCoreSummary));
    if (!index.entries.empty())
        append(index.entries.data(),
               index.entries.size() * sizeof(IndexEntry));
    IndexTrailer tr;
    tr.checksum = fnv1a64Bytes(out.data(), body);
    tr.index_size = body;
    append(&tr, sizeof(tr));
    return out;
}

namespace {

/**
 * Parse + validate an index region whose checksum already matched.
 * @p index_start is the absolute offset of the IndexHeader within the
 * trace stream; @p fh / @p region_off come from the file itself.
 * @p v3 marks a compressed record region: entry offsets are then
 * VIRTUAL (region_off + ordinal * 32, as if the region were plain v1
 * records), so bounds are checked against the virtual region end
 * instead of the physical index position. Fills @p r (valid + index on
 * success, reason on rejection).
 */
void
parseAndValidate(const Header& fh, bool v3, std::uint64_t region_off,
                 std::uint64_t index_start,
                 const std::vector<std::uint8_t>& bytes, IndexReadResult& r)
{
    if (bytes.size() < sizeof(IndexHeader)) {
        r.reason = "index region smaller than its header";
        return;
    }
    TraceIndex idx;
    std::memcpy(&idx.header, bytes.data(), sizeof(IndexHeader));
    const IndexHeader& h = idx.header;

    if (h.magic != kIndexMagic) {
        r.reason = "index header magic mismatch";
        return;
    }
    if (h.version != kIndexVersion) {
        r.reason = "unsupported index version " + std::to_string(h.version);
        return;
    }
    if (h.stride == 0) {
        r.reason = "index stride is zero";
        return;
    }
    const std::uint64_t expect_size =
        sizeof(IndexHeader) +
        std::uint64_t{h.num_cores} * sizeof(IndexCoreSummary) +
        std::uint64_t{h.entry_count} * sizeof(IndexEntry);
    if (expect_size != bytes.size()) {
        r.reason = "index size disagrees with its core/entry counts";
        return;
    }
    if (h.num_cores != fh.num_spes + 1) {
        r.reason = "index core count disagrees with file header";
        return;
    }
    if (h.record_count != fh.record_count) {
        r.reason = "index record count disagrees with file header";
        return;
    }
    if (h.record_region_offset != region_off) {
        r.reason = "index record-region offset disagrees with file";
        return;
    }
    if (h.record_count > (std::uint64_t{1} << 48)) {
        r.reason = "index record count implausible";
        return;
    }
    // Where entry offsets may point: one past the last record, in the
    // (virtual, for v3) uncompressed record address space.
    const std::uint64_t record_end =
        region_off + h.record_count * sizeof(Record);
    if (v3) {
        if (index_start < region_off + sizeof(BlockRegionHeader)) {
            r.reason = "index overlaps the block region header";
            return;
        }
    } else if (index_start < region_off || index_start != record_end) {
        r.reason = "index does not sit at the end of the record region";
        return;
    }

    idx.cores.resize(h.num_cores);
    if (h.num_cores > 0)
        std::memcpy(idx.cores.data(), bytes.data() + sizeof(IndexHeader),
                    h.num_cores * sizeof(IndexCoreSummary));
    idx.entries.resize(h.entry_count);
    if (h.entry_count > 0)
        std::memcpy(idx.entries.data(),
                    bytes.data() + sizeof(IndexHeader) +
                        h.num_cores * sizeof(IndexCoreSummary),
                    h.entry_count * std::size_t{sizeof(IndexEntry)});

    // Structural cross-checks against the record region. Everything
    // the query layer will trust gets verified here.
    std::uint64_t next_entry = 0;
    std::uint64_t total_records = 0;
    for (std::uint32_t c = 0; c < h.num_cores; ++c) {
        const IndexCoreSummary& s = idx.cores[c];
        if (s.first_entry != next_entry) {
            r.reason = "core summaries do not partition the entry array";
            return;
        }
        next_entry += s.num_entries;
        total_records += s.total_records;
        if (s.num_entries == 0) {
            if (s.total_records != 0) {
                r.reason = "core has records but no index entries";
                return;
            }
            continue;
        }
        if (s.total_records == 0) {
            r.reason = "core has index entries but no records";
            return;
        }
        if (s.num_entries !=
            (s.total_records + h.stride - 1) / h.stride) {
            r.reason = "core entry count disagrees with stride";
            return;
        }
        if (next_entry > h.entry_count) {
            r.reason = "core summaries overrun the entry array";
            return;
        }
        std::uint64_t prev_off = 0;
        std::uint64_t prev_tick = 0;
        std::uint64_t recs = 0;
        for (std::uint32_t k = 0; k < s.num_entries; ++k) {
            const IndexEntry& e = idx.entries[s.first_entry + k];
            if (e.core != c) {
                r.reason = "entry core disagrees with its summary";
                return;
            }
            if (e.byte_offset < region_off ||
                e.byte_offset + sizeof(Record) > record_end ||
                (e.byte_offset - region_off) % sizeof(Record) != 0) {
                r.reason = "entry offset outside the record region";
                return;
            }
            if (k == 0) {
                if (e.byte_offset != s.begin_offset) {
                    r.reason = "first entry disagrees with begin offset";
                    return;
                }
            } else {
                if (e.byte_offset <= prev_off) {
                    r.reason = "entry offsets not strictly increasing";
                    return;
                }
                if (e.tick < prev_tick) {
                    r.reason = "entry ticks decrease";
                    return;
                }
            }
            // Every block but the core's last holds exactly `stride`
            // of the core's records.
            if (k + 1 < s.num_entries ? e.record_count != h.stride
                                      : (e.record_count == 0 ||
                                         e.record_count > h.stride)) {
                r.reason = "entry record count disagrees with stride";
                return;
            }
            recs += e.record_count;
            prev_off = e.byte_offset;
            prev_tick = e.tick;
        }
        if (recs != s.total_records) {
            r.reason = "entry record counts do not sum to the core total";
            return;
        }
        if (s.end_offset <= prev_off || s.end_offset > record_end ||
            (s.end_offset - region_off) % sizeof(Record) != 0) {
            r.reason = "core end offset implausible";
            return;
        }
    }
    if (next_entry != h.entry_count) {
        r.reason = "core summaries do not cover every entry";
        return;
    }
    if (total_records + h.bad_core_records != h.record_count) {
        r.reason = "per-core totals do not sum to the record count";
        return;
    }

    r.valid = true;
    r.index = std::move(idx);
}

/**
 * Shared footer discovery over random-access bytes. @p read_at must
 * copy @p n bytes at stream offset @p off, returning false past EOF;
 * @p size is the total stream size.
 */
template <typename ReadAt>
IndexReadResult
readIndexImpl(std::uint64_t size, const ReadAt& read_at)
{
    IndexReadResult r;

    Header fh;
    if (size < sizeof(Header) || !read_at(0, &fh, sizeof(fh)))
        return r;
    if (fh.magic != kMagic || (fh.version != kFormatVersion &&
                               fh.version != kFormatVersionV3))
        return r;

    // Skip the name table to find the record region.
    std::uint64_t off = sizeof(Header);
    for (std::uint32_t i = 0; i < fh.num_spes; ++i) {
        std::uint32_t len = 0;
        if (off + sizeof(len) > size || !read_at(off, &len, sizeof(len)))
            return r;
        if (len > (1u << 20))
            return r; // implausible name, not a healthy trace
        off += sizeof(len) + len;
        if (off > size)
            return r;
    }
    const std::uint64_t region_off = off;

    IndexTrailer tr;
    if (size < region_off + sizeof(IndexTrailer) ||
        !read_at(size - sizeof(IndexTrailer), &tr, sizeof(tr)))
        return r;
    if (tr.magic != kIndexMagic)
        return r; // no index footer: a plain v1 trace

    r.present = true;
    const std::uint64_t max_index =
        size - sizeof(IndexTrailer) - region_off;
    if (tr.index_size < sizeof(IndexHeader) || tr.index_size > max_index) {
        r.reason = "trailer index size out of range";
        return r;
    }
    const std::uint64_t index_start =
        size - sizeof(IndexTrailer) - tr.index_size;
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(tr.index_size));
    if (!read_at(index_start, bytes.data(), bytes.size())) {
        r.reason = "index region unreadable";
        return r;
    }
    if (fnv1a64Bytes(bytes.data(), bytes.size()) != tr.checksum) {
        r.reason = "index checksum mismatch";
        return r;
    }
    parseAndValidate(fh, fh.version == kFormatVersionV3, region_off,
                     index_start, bytes, r);
    return r;
}

} // namespace

IndexReadResult
readIndex(std::istream& is)
{
    const auto base = is.tellg();
    if (base == std::streampos(-1)) {
        is.clear();
        return {}; // non-seekable: indexes need random access
    }
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    if (end == std::streampos(-1) || !is) {
        is.clear();
        is.seekg(base);
        return {};
    }
    const auto size = static_cast<std::uint64_t>(end - base);

    const auto read_at = [&](std::uint64_t off, void* dst,
                             std::size_t n) -> bool {
        is.clear();
        is.seekg(base + static_cast<std::streamoff>(off));
        is.read(reinterpret_cast<char*>(dst),
                static_cast<std::streamsize>(n));
        return static_cast<bool>(is) &&
               static_cast<std::size_t>(is.gcount()) == n;
    };
    IndexReadResult r = readIndexImpl(size, read_at);
    is.clear();
    is.seekg(base);
    return r;
}

IndexReadResult
readIndexFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return {};
    return readIndex(is);
}

IndexReadResult
readIndexBuffer(const std::vector<std::uint8_t>& buf)
{
    const auto read_at = [&](std::uint64_t off, void* dst,
                             std::size_t n) -> bool {
        if (off + n > buf.size())
            return false;
        std::memcpy(dst, buf.data() + off, n);
        return true;
    };
    return readIndexImpl(buf.size(), read_at);
}

} // namespace cell::trace
