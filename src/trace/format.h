/**
 * @file
 * PDT trace file format.
 *
 * A trace is a header, a per-SPE program-name table, and a stream of
 * fixed-size 32-byte records. Records carry *raw core-local*
 * timestamps — the SPU's 32-bit decrementer value or the low 32 bits
 * of the PPE timebase — exactly as the hardware tool recorded them,
 * because reading a globally-coherent clock per event would be far too
 * intrusive. Dedicated synchronization records (one at each core's
 * start, one at every buffer flush) pin raw values to the full 64-bit
 * timebase; reconstructing a coherent global timeline from them,
 * including across 32-bit wrap-arounds, is the trace analyzer's job.
 *
 * Record kinds 0..N map 1:1 onto rt::ApiOp; kinds >= 200 are tool
 * records (sync, flush markers) emitted by PDT itself.
 */

#ifndef CELL_TRACE_FORMAT_H
#define CELL_TRACE_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace cell::trace {

/** File magic: "CBEPDT01". */
constexpr std::uint64_t kMagic = 0x3130544450454243ULL;

constexpr std::uint32_t kFormatVersion = 1;

/**
 * Version stamped in the file header when the record region is written
 * as compressed v3 blocks (WriteOptions::compress). Everything before
 * the record region — header layout, name table — is unchanged; the
 * region itself becomes self-checksummed delta-encoded blocks (see
 * trace/block.h). Readers decode v3 transparently and normalize the
 * in-memory header back to version 1, so every consumer of TraceData
 * sees identical bytes whichever container the trace came in.
 */
constexpr std::uint32_t kFormatVersionV3 = 3;

/** Tool record kinds (outside the ApiOp range). */
enum ToolRecordKind : std::uint8_t
{
    /** Clock sync: a = raw core-local stamp, b = 64-bit timebase. */
    kSyncRecord = 200,
    /** Buffer flush marker: a = records flushed, b = flush cycles. */
    kFlushRecord = 201,
    /**
     * Drop marker: events were lost before this point (arena overflow
     * or an overwritten flight-recorder window). a = events dropped in
     * the gap ending here, b = cumulative events dropped on this core.
     * The analyzer flags intervals spanning one as unreliable.
     */
    kDropRecord = 202,
};

/** Phase values (match rt::ApiPhase). */
constexpr std::uint8_t kPhaseBegin = 0;
constexpr std::uint8_t kPhaseEnd = 1;

/**
 * One trace record. 32 bytes, written verbatim.
 *
 * timestamp is core-local and 32-bit raw:
 *   - SPE records: the decrementer value (counts DOWN, wraps);
 *   - PPE records: the low 32 bits of the timebase (counts up, wraps).
 */
struct Record
{
    std::uint8_t kind;       ///< rt::ApiOp value, or ToolRecordKind
    std::uint8_t phase;      ///< kPhaseBegin / kPhaseEnd
    std::uint16_t core;      ///< 0 = PPE, 1 + i = SPE i
    std::uint32_t timestamp; ///< raw core-local clock
    std::uint64_t a;
    std::uint64_t b;
    std::uint32_t c;
    std::uint32_t d;
};
static_assert(sizeof(Record) == 32, "trace records are 32 bytes");

/** Fixed-size file header. */
struct Header
{
    std::uint64_t magic = kMagic;
    std::uint32_t version = kFormatVersion;
    std::uint32_t num_spes = 0;
    std::uint64_t core_hz = 0;
    std::uint32_t timebase_divider = 0;
    std::uint32_t reserved = 0;
    std::uint64_t record_count = 0;
};
static_assert(sizeof(Header) == 40, "header is 40 bytes");

/** A fully-loaded trace. */
struct TraceData
{
    Header header;
    /** Program name per SPE (index == SPE index). */
    std::vector<std::string> spe_programs;
    std::vector<Record> records;
};

} // namespace cell::trace

#endif // CELL_TRACE_FORMAT_H
