/**
 * @file
 * Per-core clock replay: the record-level state machine that places a
 * raw trace record on the reconstructed global timebase.
 *
 * This is the single source of truth for the replay semantics shared
 * by the index builder (trace::buildIndex) and the windowed query
 * layer (ta::queryWindowFile): sync records update the raw->timebase
 * mapping and are themselves placed, records before a core's first
 * sync cannot be placed, and drop markers bump the core's gap epoch
 * before placement. It mirrors TraceModel::build exactly — the
 * differential query suite (tests/ta/test_query_diff.cc) enforces the
 * agreement on every workload trace.
 *
 * Placement does NOT apply the monotonic clamp (equal-or-earlier
 * stamps from back-to-back events inside one timebase tick); the
 * caller folds the clamp over placed times, seeded with the largest
 * time already seen on the core.
 */

#ifndef CELL_TRACE_REPLAY_H
#define CELL_TRACE_REPLAY_H

#include <cstdint>

#include "trace/format.h"

namespace cell::trace {

/** Clock-reconstruction state of one core's record stream. */
struct ClockReplay
{
    bool have_sync = false;
    std::uint32_t sync_raw = 0;
    std::uint64_t sync_tb = 0;
    /** Drop epoch: bumped at every placeable kDropRecord. */
    std::uint32_t epoch = 0;

    /**
     * Feed the next record of this core's stream. Returns true and
     * sets @p time_tb (unclamped) when the record can be placed on the
     * global clock; false when it precedes the core's first sync
     * record (strict analysis throws on those, lenient skips them).
     */
    bool feed(const Record& rec, std::uint64_t& time_tb)
    {
        if (rec.kind == kSyncRecord) {
            have_sync = true;
            sync_raw = static_cast<std::uint32_t>(rec.a);
            sync_tb = rec.b;
        }
        if (!have_sync)
            return false;
        if (rec.kind == kDropRecord)
            epoch += 1; // the gap ends here; what follows is new

        // Raw 32-bit delta since the sync point: the SPU decrementer
        // counts down, the PPE timebase counts up; modulo-2^32
        // subtraction handles wrap in both directions.
        const std::uint32_t delta = rec.core != 0
                                        ? sync_raw - rec.timestamp
                                        : rec.timestamp - sync_raw;
        time_tb = sync_tb + delta;
        return true;
    }
};

} // namespace cell::trace

#endif // CELL_TRACE_REPLAY_H
