/**
 * @file
 * Seeded scenario generator implementation.
 */

#include "trace/gen.h"

#include <algorithm>

#include "trace/format.h"
#include "trace/writer.h"

namespace cell::trace::gen {
namespace {

/** splitmix64: tiny, fast, and stable across platforms — the seed is
 *  the whole reproduction recipe, so the stream must never change. */
struct Rng
{
    std::uint64_t s;
    explicit Rng(std::uint64_t seed) : s(seed) {}
    std::uint64_t next()
    {
        std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
    std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }
    bool chance(unsigned pct) { return below(100) < pct; }
};

constexpr const char* kScenarioNames[] = {
    "basic",       "deep_nesting", "drop_storm", "clock_skew",
    "wrap_around", "multi_core",   "unknown_ops", "flush_heavy",
    "sparse_cores", "tiny",
};
static_assert(sizeof(kScenarioNames) / sizeof(kScenarioNames[0]) ==
              kNumScenarios);

/** Per-core emission state. */
struct CoreGen
{
    bool synced = false;
    std::uint32_t sync_raw = 0;
    std::uint64_t sync_tb = 0;
    std::uint64_t since_sync = 0;
    std::uint64_t drops_cum = 0;
    std::vector<std::uint8_t> open; ///< kinds with an un-Ended Begin
};

std::uint32_t
encodeTs(bool is_spe, std::uint32_t sync_raw, std::uint32_t delta)
{
    return is_spe ? sync_raw - delta : sync_raw + delta;
}

} // namespace

const char*
scenarioName(Scenario s)
{
    const auto i = static_cast<std::size_t>(s);
    return i < kNumScenarios ? kScenarioNames[i] : "?";
}

bool
scenarioFromName(const std::string& name, Scenario& out)
{
    for (std::size_t i = 0; i < kNumScenarios; ++i) {
        if (name == kScenarioNames[i]) {
            out = static_cast<Scenario>(i);
            return true;
        }
    }
    return false;
}

Scenario
scenarioFor(const GenOptions& opt)
{
    if (opt.scenario >= 0 &&
        opt.scenario < static_cast<int>(kNumScenarios))
        return static_cast<Scenario>(opt.scenario);
    Rng rng(opt.seed ^ 0x5CE11A51ull);
    return static_cast<Scenario>(rng.below(kNumScenarios));
}

TraceData
generate(const GenOptions& opt)
{
    const Scenario sc = scenarioFor(opt);
    Rng rng(opt.seed);

    std::uint32_t num_spes = opt.num_spes;
    if (num_spes == 0) {
        switch (sc) {
          case Scenario::MultiCore: num_spes = 6 + rng.below(3); break;
          case Scenario::SparseCores: num_spes = 4 + rng.below(3); break;
          case Scenario::DropStorm:
          case Scenario::ClockSkew: num_spes = 3; break;
          case Scenario::Tiny: num_spes = 1; break;
          default: num_spes = 2; break;
        }
    }
    std::uint64_t records = opt.records;
    if (records == 0) {
        records = sc == Scenario::Tiny ? 1 + rng.below(8)
                                       : 200 + rng.below(800);
    }

    TraceData d;
    d.header.num_spes = num_spes;
    d.header.core_hz = 3'200'000'000ull;
    d.header.timebase_divider = 8;
    d.spe_programs.resize(num_spes);
    for (std::uint32_t i = 0; i < num_spes; ++i)
        d.spe_programs[i] = std::string("gen_") + scenarioName(sc);

    const std::uint32_t n_cores = num_spes + 1;
    std::vector<CoreGen> cores(n_cores);
    std::uint64_t tb = 10'000 + rng.below(100'000);

    auto emitSync = [&](std::uint16_t c, std::uint64_t local_tb) {
        CoreGen& cg = cores[c];
        std::uint64_t sync_tb = local_tb;
        if (sc == Scenario::ClockSkew && cg.synced && rng.chance(30)) {
            // A re-sync that steps the mapping backward: later events
            // place behind the clamp carry and get flattened — the
            // analyzer path this scenario exists to exercise.
            sync_tb = local_tb - std::min<std::uint64_t>(local_tb,
                                                         rng.below(500));
        }
        cg.sync_raw = sc == Scenario::WrapAround
                          ? static_cast<std::uint32_t>(rng.below(1024))
                          : static_cast<std::uint32_t>(rng.next());
        cg.sync_tb = sync_tb;
        cg.synced = true;
        cg.since_sync = 0;
        Record r{};
        r.kind = kSyncRecord;
        r.core = c;
        r.timestamp = cg.sync_raw; // delta 0: places at sync_tb
        r.a = cg.sync_raw;
        r.b = cg.sync_tb;
        d.records.push_back(r);
    };

    while (d.records.size() < records) {
        // Pick a core; SparseCores funnels nearly everything to SPE 0.
        std::uint16_t c;
        if (sc == Scenario::SparseCores && rng.chance(80))
            c = 1;
        else
            c = static_cast<std::uint16_t>(rng.below(n_cores));
        CoreGen& cg = cores[c];

        tb += 1 + rng.below(64);
        std::uint64_t local_tb = tb;
        if (sc == Scenario::ClockSkew) {
            const std::uint64_t jitter = rng.below(11);
            local_tb = tb + jitter - std::min<std::uint64_t>(tb, 5);
        }

        const bool need_sync =
            !cg.synced || cg.since_sync >= 50 ||
            local_tb - cg.sync_tb > 0x40000000ull;
        if (need_sync) {
            emitSync(c, local_tb);
            continue;
        }

        const std::uint64_t raw_delta =
            local_tb > cg.sync_tb ? local_tb - cg.sync_tb : 0;
        const std::uint32_t delta = static_cast<std::uint32_t>(raw_delta);

        Record r{};
        r.core = c;
        r.timestamp = encodeTs(c != 0, cg.sync_raw, delta);
        r.a = rng.below(4096);
        r.b = rng.next() & 0xFFFFFFull;
        r.c = static_cast<std::uint32_t>(rng.below(256));
        r.d = static_cast<std::uint32_t>(rng.below(16));

        if (sc == Scenario::DropStorm && rng.chance(20)) {
            r.kind = kDropRecord;
            r.phase = 0;
            r.a = 1 + rng.below(50);
            cg.drops_cum += r.a;
            r.b = cg.drops_cum;
        } else if (sc == Scenario::FlushHeavy && rng.chance(30)) {
            r.kind = kFlushRecord;
            r.phase = 0;
            r.a = r.b = 0;
        } else if (sc == Scenario::UnknownOps && rng.chance(25)) {
            r.kind = static_cast<std::uint8_t>(40 + rng.below(24));
            r.phase = static_cast<std::uint8_t>(rng.below(2));
        } else {
            const unsigned close_bias =
                sc == Scenario::DeepNesting
                    ? (cg.open.size() > 20 ? 80 : 10)
                    : 45;
            if (!cg.open.empty() && rng.chance(close_bias)) {
                const std::size_t k = rng.below(cg.open.size());
                r.kind = cg.open[k];
                r.phase = kPhaseEnd;
                cg.open.erase(cg.open.begin() +
                              static_cast<std::ptrdiff_t>(k));
            } else {
                r.kind = static_cast<std::uint8_t>(rng.below(33));
                r.phase = kPhaseBegin;
                cg.open.push_back(r.kind);
            }
        }
        cg.since_sync += 1;
        d.records.push_back(r);
    }

    d.header.record_count = d.records.size();
    return d;
}

std::vector<std::uint8_t>
generateBytes(const BytesOptions& opt, std::string* desc)
{
    const TraceData d = generate(opt.gen);
    Rng rng(opt.gen.seed ^ 0xADE5A17Aull);

    int container = opt.container;
    if (container < 1 || container > 3)
        container = 1 + static_cast<int>(rng.below(3));
    WriteOptions w;
    if (container == 2)
        w.index_stride = 32;
    if (container == 3) {
        w.index_stride = 32;
        w.compress = true;
    }
    std::vector<std::uint8_t> bytes = writeBuffer(d, w);

    std::string tag = std::string(scenarioName(scenarioFor(opt.gen))) +
                      " v" + std::to_string(container);
    if (opt.adversarial) {
        tag += " adv[";
        const std::uint64_t n_mut = 1 + rng.below(2);
        for (std::uint64_t m = 0; m < n_mut; ++m) {
            if (m)
                tag += ',';
            switch (rng.below(16)) {
              case 0:
              case 1:
              case 14:
                bytes.resize(std::max<std::size_t>(
                    1, rng.below(bytes.size() + 1)));
                tag += "truncate";
                break;
              case 2:
              case 3:
              case 12:
              case 13: {
                const std::uint64_t flips = 1 + rng.below(8);
                for (std::uint64_t f = 0; f < flips; ++f)
                    bytes[rng.below(bytes.size())] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                tag += "bitflip";
                break;
              }
              case 4:
              case 5: {
                const std::size_t run = static_cast<std::size_t>(
                    16 + rng.below(std::max<std::uint64_t>(
                             1, std::min<std::uint64_t>(
                                    200, bytes.size() / 4))));
                const std::size_t at = static_cast<std::size_t>(
                    rng.below(bytes.size()));
                const std::size_t end =
                    std::min(bytes.size(), at + run);
                std::fill(bytes.begin() +
                              static_cast<std::ptrdiff_t>(at),
                          bytes.begin() +
                              static_cast<std::ptrdiff_t>(end),
                          std::uint8_t{0xFF});
                tag += "midsmash";
                break;
              }
              case 6:
                // Lie about the record count (header bytes 32..39).
                if (bytes.size() >= 40) {
                    const std::uint64_t lie = rng.next();
                    for (int b = 0; b < 8; ++b)
                        bytes[32 + static_cast<std::size_t>(b)] =
                            static_cast<std::uint8_t>(lie >> (8 * b));
                }
                tag += "headerlie";
                break;
              case 7:
                if (bytes.size() > 44) {
                    for (std::size_t b = 40; b < 44; ++b)
                        bytes[b] = static_cast<std::uint8_t>(rng.next());
                }
                tag += "namegarbage";
                break;
              case 8:
              case 9: {
                const std::uint64_t extra = 16 + rng.below(48);
                for (std::uint64_t b = 0; b < extra; ++b)
                    bytes.push_back(
                        static_cast<std::uint8_t>(rng.next()));
                tag += "tailgarbage";
                break;
              }
              case 10:
              case 11:
                if (bytes.size() >= 24) {
                    for (std::size_t b = bytes.size() - 16;
                         b < bytes.size() - 8; ++b)
                        bytes[b] ^= static_cast<std::uint8_t>(
                            1 + rng.below(255));
                }
                tag += "footersmash";
                break;
              default:
                if (bytes.size() >= 4) {
                    for (std::size_t b = 0; b < 4; ++b)
                        bytes[b] = static_cast<std::uint8_t>(rng.next());
                }
                tag += "magicsmash";
                break;
            }
        }
        tag += ']';
    }
    if (desc != nullptr)
        *desc = tag;
    return bytes;
}

} // namespace cell::trace::gen
