/**
 * @file
 * Seeded scenario generator: structurally diverse PDT traces from a
 * single seed, deterministically.
 *
 * Two layers:
 *  - generate(): a strict-valid TraceData shaped by a scenario (deep
 *    nesting, drop storms, clock skew, raw-counter wrap, sparse or
 *    many cores, unknown ops, ...). Every core's stream starts with a
 *    sync record and every timestamp round-trips through the replay
 *    math, so the strict analyzer accepts every output.
 *  - generateBytes(): the same trace serialized to a v1/v2/v3
 *    container, optionally mauled by deterministic adversarial
 *    mutations (truncation, bit flips, header lies, index/footer and
 *    block corruption) to feed the fuzz corpus and salvage paths.
 *
 * Identical options always produce identical bytes — CI sweeps and
 * property tests print only the seed on failure.
 */

#ifndef CELL_TRACE_GEN_H
#define CELL_TRACE_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/reader.h"

namespace cell::trace::gen {

enum class Scenario : std::uint8_t
{
    Basic,      ///< mixed Begin/End pairs, periodic resyncs
    DeepNesting,///< many distinct ops open before any closes
    DropStorm,  ///< frequent drop markers, epochs everywhere
    ClockSkew,  ///< per-core jitter + backward sync steps (clamp work)
    WrapAround, ///< sync_raw near zero so SPE decrementers wrap
    MultiCore,  ///< 6-8 SPEs, even spread
    UnknownOps, ///< future/unknown kinds (40..63) sprinkled in
    FlushHeavy, ///< flush markers between most events
    SparseCores,///< several SPEs but nearly all traffic on one
    Tiny,       ///< 1-8 records, boundary shapes

    kCount,
};

constexpr std::size_t kNumScenarios =
    static_cast<std::size_t>(Scenario::kCount);

const char* scenarioName(Scenario s);

/** Parse "drop_storm" etc.; false if the name is unknown. */
bool scenarioFromName(const std::string& name, Scenario& out);

struct GenOptions
{
    std::uint64_t seed = 1;
    /** Scenario index, or -1 to derive one from the seed. */
    int scenario = -1;
    /** SPE count, or 0 to let the scenario pick. */
    std::uint32_t num_spes = 0;
    /** Record count, or 0 to let the scenario pick. */
    std::uint64_t records = 0;
};

/** The scenario generate() will use for these options. */
Scenario scenarioFor(const GenOptions& opt);

/** A strict-valid trace for the scenario. Deterministic in opt. */
TraceData generate(const GenOptions& opt);

struct BytesOptions
{
    GenOptions gen;
    /** Container version 1/2/3, or -1 to derive from the seed. */
    int container = -1;
    /** Apply 1-2 deterministic structural mutations after writing. */
    bool adversarial = false;
};

/**
 * Serialized (and optionally mauled) trace bytes. If @p desc is
 * non-null it receives a human-readable tag, e.g.
 * "drop_storm v3 adv[truncate]".
 */
std::vector<std::uint8_t> generateBytes(const BytesOptions& opt,
                                        std::string* desc = nullptr);

} // namespace cell::trace::gen

#endif // CELL_TRACE_GEN_H
