/**
 * @file
 * v3 block codec: varint payload encode/decode, region writer, the
 * salvage walk, the streaming BlockReader, and directory loading.
 *
 * Exactness argument for the delta scheme: every delta is computed
 * with modular (two's-complement) subtraction and re-applied with
 * modular addition, so encode/decode round-trips ARBITRARY field
 * values — including the garbage fields of deliberately-messy test
 * traces — not just well-formed ones. Zigzag only affects how many
 * varint bytes a delta costs, never whether it survives.
 */

#include "trace/block.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <unordered_map>

#include "trace/index.h"
#include "trace/replay.h"

namespace cell::trace {

namespace {

// -------------------------------------------------------------------------
// Varint / zigzag primitives

void
appendVarint(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t z)
{
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
}

/** Bounded varint reader over a block payload. */
struct PayloadCursor
{
    const std::uint8_t* p;
    const std::uint8_t* end;

    /** Hot path: most deltas fit one byte; fall out of line otherwise
     *  so the fused record loop stays small. */
    std::uint64_t varint()
    {
        if (p != end && *p < 0x80)
            return *p++;
        return varintSlow();
    }

    /** Multi-byte (or end-of-stream) path. When at least 10 bytes
     *  remain the ladder runs with a single up-front bounds check;
     *  near the stream's end the checked loop takes over, so
     *  truncation still throws instead of over-reading. */
    __attribute__((noinline)) std::uint64_t varintSlow()
    {
        if (end - p >= 10) {
            const std::uint8_t* q = p;
            std::uint64_t b = *q++;
            std::uint64_t v = b & 0x7F;
            unsigned shift = 7;
            do {
                b = *q++;
                v |= (b & 0x7F) << shift;
                shift += 7;
            } while (b >= 0x80 && shift < 63);
            if (b >= 0x80) { // 10th byte carries bit 63
                b = *q++;
                if (b > 1)
                    throw std::runtime_error(
                        "trace::block: varint overflows 64 bits");
                v |= b << 63;
            }
            p = q;
            return v;
        }
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            if (p == end)
                throw std::runtime_error(
                    "trace::block: payload truncated inside a varint");
            const std::uint8_t byte = *p++;
            if (shift >= 63 && byte > 1)
                throw std::runtime_error(
                    "trace::block: varint overflows 64 bits");
            v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0)
                return v;
            shift += 7;
        }
    }
};

/** Zero-run varint stream writer (columnar operand streams): nonzero
 *  values are plain varints; a run of zeros is a 0x00 escape byte plus
 *  a varint count. Unambiguous because a nonzero value's varint never
 *  starts with 0x00 (a zero low group forces the continuation bit). */
struct RunStream
{
    std::vector<std::uint8_t> bytes;
    std::uint64_t zeros = 0;

    void put(std::uint64_t z)
    {
        if (z == 0) {
            ++zeros;
            return;
        }
        flush();
        appendVarint(bytes, z);
    }

    void flush()
    {
        if (zeros > 0) {
            bytes.push_back(0);
            appendVarint(bytes, zeros);
            zeros = 0;
        }
    }
};

/** Zero-run varint stream reader, mirror of RunStream. */
struct RunCursor
{
    PayloadCursor in;
    std::uint64_t zeros = 0; ///< zero deltas still owed by a run

    std::uint64_t next()
    {
        if (zeros > 0) {
            --zeros;
            return 0;
        }
        if (in.p == in.end)
            throw std::runtime_error(
                "trace::block: operand stream truncated");
        if (*in.p == 0) {
            ++in.p;
            zeros = in.varint();
            if (zeros == 0)
                throw std::runtime_error(
                    "trace::block: empty zero run in operand stream");
            --zeros;
            return 0;
        }
        return in.varint();
    }

    void finish(const char* what) const
    {
        // A leftover run means the encoder claimed more zero deltas
        // than the block has records; leftover bytes mean the stream
        // length lied. Both are damage.
        if (zeros != 0 || in.p != in.end)
            throw std::runtime_error(
                std::string("trace::block: trailing bytes in the ") + what +
                " stream");
    }
};

// -------------------------------------------------------------------------
// Payload codec

/** Dictionary entry: one (kind, phase, core) triple plus the previous
 *  payload words of its last record (delta bases). The columnar layout
 *  additionally chains the previous DELTAS (qa..qd): its operand
 *  streams carry second-order differences, so a constant stride — DMA
 *  addresses marching through a buffer, a counter bumping by a fixed
 *  amount — flattens to a run of zeros. */
struct DictEntry
{
    std::uint8_t kind = 0;
    std::uint8_t phase = 0;
    std::uint16_t core = 0;
    std::uint64_t pa = 0, pb = 0;
    std::uint32_t pc = 0, pd = 0;
    std::uint64_t qa = 0, qb = 0;
    std::uint32_t qc = 0, qd = 0;
};

/**
 * Reusable per-thread decode state. The core->slot tables are stamped
 * with an epoch instead of cleared between blocks, so a block touching
 * 3 cores pays for 3 slots, not 65536 — while an adversarial block
 * whose dictionary sprays arbitrary u16 cores still decodes in O(n)
 * instead of the O(n^2) a linear slot scan would cost.
 */
struct DecodeScratch
{
    std::vector<std::uint32_t> core_epoch;   ///< stamp per core id
    std::vector<std::uint32_t> core_prev_ts; ///< valid when stamped
    std::uint32_t epoch = 0;
    std::vector<DictEntry> dict;

    void newEpoch()
    {
        if (++epoch == 0) { // u32 wrapped: stale stamps could alias
            std::fill(core_epoch.begin(), core_epoch.end(), 0);
            epoch = 1;
        }
    }

    void ensure(std::uint16_t core)
    {
        if (core >= core_epoch.size()) {
            std::size_t sz = core_epoch.empty() ? 64 : core_epoch.size();
            while (sz <= core)
                sz *= 2;
            core_epoch.resize(sz, 0);
            core_prev_ts.resize(sz, 0);
        }
    }
};

DecodeScratch&
scratch()
{
    thread_local DecodeScratch s;
    return s;
}

std::uint32_t
dictKey(const Record& r)
{
    return (static_cast<std::uint32_t>(r.core) << 16) |
           (static_cast<std::uint32_t>(r.phase) << 8) | r.kind;
}

/** Build the (kind, phase, core) dictionary in first-appearance order. */
void
buildDict(const Record* recs, std::size_t n, std::vector<DictEntry>& dict,
          std::unordered_map<std::uint32_t, std::uint32_t>& dict_of)
{
    dict_of.reserve(64);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t key = dictKey(recs[i]);
        if (dict_of.emplace(key, dict.size()).second) {
            DictEntry e;
            e.kind = recs[i].kind;
            e.phase = recs[i].phase;
            e.core = recs[i].core;
            dict.push_back(e);
        }
    }
}

void
appendDict(std::vector<std::uint8_t>& out, const std::vector<DictEntry>& dict)
{
    appendVarint(out, dict.size());
    for (const DictEntry& e : dict) {
        appendVarint(out, (static_cast<std::uint64_t>(e.core) << 16) |
                              (static_cast<std::uint64_t>(e.phase) << 8) |
                              e.kind);
    }
}

/** Parse a dictionary stream into @p dict (shared validation). */
void
readDict(PayloadCursor& in, std::uint32_t record_count,
         std::vector<DictEntry>& dict)
{
    const std::uint64_t dict_count = in.varint();
    if (dict_count > record_count || (record_count > 0 && dict_count == 0))
        throw std::runtime_error(
            "trace::block: dictionary size implausible (" +
            std::to_string(dict_count) + " entries, " +
            std::to_string(record_count) + " records)");
    dict.assign(static_cast<std::size_t>(dict_count), DictEntry{});
    for (DictEntry& e : dict) {
        const std::uint64_t packed = in.varint();
        if (packed > 0xFFFFFFFFULL)
            throw std::runtime_error(
                "trace::block: dictionary entry out of range");
        e.core = static_cast<std::uint16_t>(packed >> 16);
        e.phase = static_cast<std::uint8_t>(packed >> 8);
        e.kind = static_cast<std::uint8_t>(packed);
    }
}

/** The original interleaved layout (BlockHeader::payload == 0). */
void
encodeInterleavedPayload(const Record* recs, std::size_t n,
                         std::vector<std::uint8_t>& out)
{
    std::vector<DictEntry> dict;
    std::unordered_map<std::uint32_t, std::uint32_t> dict_of;
    buildDict(recs, n, dict, dict_of);
    appendDict(out, dict);

    DecodeScratch& sc = scratch();
    sc.newEpoch();
    for (std::size_t i = 0; i < n; ++i) {
        const Record& r = recs[i];
        const std::uint32_t idx = dict_of.find(dictKey(r))->second;
        DictEntry& e = dict[idx];
        appendVarint(out, idx);

        sc.ensure(r.core);
        if (sc.core_epoch[r.core] != sc.epoch) {
            appendVarint(out, r.timestamp);
            sc.core_epoch[r.core] = sc.epoch;
        } else {
            const auto d = static_cast<std::int32_t>(
                r.timestamp - sc.core_prev_ts[r.core]);
            appendVarint(out, zigzag(d));
        }
        sc.core_prev_ts[r.core] = r.timestamp;

        appendVarint(out, zigzag(static_cast<std::int64_t>(r.a - e.pa)));
        appendVarint(out, zigzag(static_cast<std::int64_t>(r.b - e.pb)));
        appendVarint(
            out, zigzag(static_cast<std::int32_t>(r.c - e.pc)));
        appendVarint(
            out, zigzag(static_cast<std::int32_t>(r.d - e.pd)));
        e.pa = r.a;
        e.pb = r.b;
        e.pc = r.c;
        e.pd = r.d;
    }
}

void
decodeInterleavedInto(const std::uint8_t* p, std::size_t len,
                      std::uint32_t record_count, Record* dst)
{
    PayloadCursor in{p, p + len};

    DecodeScratch& sc = scratch();
    readDict(in, record_count, sc.dict);
    const std::uint64_t dict_count = sc.dict.size();
    DictEntry* const dict = sc.dict.data();

    sc.newEpoch();
    std::uint16_t max_core = 0;
    for (std::uint64_t k = 0; k < dict_count; ++k)
        max_core = std::max(max_core, dict[k].core);
    sc.ensure(max_core);
    std::uint32_t* const core_epoch = sc.core_epoch.data();
    std::uint32_t* const core_prev_ts = sc.core_prev_ts.data();
    for (std::uint32_t i = 0; i < record_count; ++i) {
        const std::uint64_t idx = in.varint();
        if (idx >= dict_count)
            throw std::runtime_error(
                "trace::block: dictionary index out of range at record " +
                std::to_string(i));
        DictEntry& e = dict[static_cast<std::size_t>(idx)];

        Record& r = dst[i];
        r.kind = e.kind;
        r.phase = e.phase;
        r.core = e.core;

        const std::uint64_t tv = in.varint();
        if (core_epoch[e.core] != sc.epoch) {
            if (tv > 0xFFFFFFFFULL)
                throw std::runtime_error(
                    "trace::block: absolute timestamp out of range");
            r.timestamp = static_cast<std::uint32_t>(tv);
            core_epoch[e.core] = sc.epoch;
        } else {
            r.timestamp = core_prev_ts[e.core] +
                          static_cast<std::uint32_t>(unzigzag(tv));
        }
        core_prev_ts[e.core] = r.timestamp;

        r.a = e.pa + static_cast<std::uint64_t>(unzigzag(in.varint()));
        r.b = e.pb + static_cast<std::uint64_t>(unzigzag(in.varint()));
        r.c = e.pc + static_cast<std::uint32_t>(unzigzag(in.varint()));
        r.d = e.pd + static_cast<std::uint32_t>(unzigzag(in.varint()));
        e.pa = r.a;
        e.pb = r.b;
        e.pc = r.c;
        e.pd = r.d;
    }
    if (in.p != in.end)
        throw std::runtime_error("trace::block: trailing payload bytes");
}

/** Columnar layout (BlockHeader::payload == 1): a u32[7] stream-length
 *  table, then the dict / index / timestamp / a / b / c / d streams
 *  back to back. Field semantics are identical to interleaved. */
constexpr std::size_t kStreamTableBytes = 7 * sizeof(std::uint32_t);

void
encodeColumnarPayload(const Record* recs, std::size_t n,
                      std::vector<std::uint8_t>& out)
{
    std::vector<DictEntry> dict;
    std::unordered_map<std::uint32_t, std::uint32_t> dict_of;
    buildDict(recs, n, dict, dict_of);

    std::vector<std::uint8_t> s_dict, s_idx, s_ts;
    RunStream s_a, s_b, s_c, s_d;
    appendDict(s_dict, dict);
    s_idx.reserve(n);
    s_ts.reserve(n * 2);

    DecodeScratch& sc = scratch();
    sc.newEpoch();
    for (std::size_t i = 0; i < n; ++i) {
        const Record& r = recs[i];
        const std::uint32_t idx = dict_of.find(dictKey(r))->second;
        DictEntry& e = dict[idx];
        appendVarint(s_idx, idx);

        sc.ensure(r.core);
        if (sc.core_epoch[r.core] != sc.epoch) {
            appendVarint(s_ts, r.timestamp);
            sc.core_epoch[r.core] = sc.epoch;
        } else {
            const auto d = static_cast<std::int32_t>(
                r.timestamp - sc.core_prev_ts[r.core]);
            appendVarint(s_ts, zigzag(d));
        }
        sc.core_prev_ts[r.core] = r.timestamp;

        const std::uint64_t da = r.a - e.pa;
        const std::uint64_t db = r.b - e.pb;
        const std::uint32_t dc = r.c - e.pc;
        const std::uint32_t dd = r.d - e.pd;
        s_a.put(zigzag(static_cast<std::int64_t>(da - e.qa)));
        s_b.put(zigzag(static_cast<std::int64_t>(db - e.qb)));
        s_c.put(zigzag(static_cast<std::int32_t>(dc - e.qc)));
        s_d.put(zigzag(static_cast<std::int32_t>(dd - e.qd)));
        e.qa = da;
        e.qb = db;
        e.qc = dc;
        e.qd = dd;
        e.pa = r.a;
        e.pb = r.b;
        e.pc = r.c;
        e.pd = r.d;
    }
    s_a.flush();
    s_b.flush();
    s_c.flush();
    s_d.flush();

    const std::uint32_t lens[7] = {
        static_cast<std::uint32_t>(s_dict.size()),
        static_cast<std::uint32_t>(s_idx.size()),
        static_cast<std::uint32_t>(s_ts.size()),
        static_cast<std::uint32_t>(s_a.bytes.size()),
        static_cast<std::uint32_t>(s_b.bytes.size()),
        static_cast<std::uint32_t>(s_c.bytes.size()),
        static_cast<std::uint32_t>(s_d.bytes.size()),
    };
    const std::size_t at = out.size();
    out.resize(at + kStreamTableBytes);
    std::memcpy(out.data() + at, lens, kStreamTableBytes);
    for (const std::vector<std::uint8_t>* s :
         {&s_dict, &s_idx, &s_ts, &s_a.bytes, &s_b.bytes, &s_c.bytes,
          &s_d.bytes})
        out.insert(out.end(), s->begin(), s->end());
}

void
decodeColumnarInto(const std::uint8_t* p, std::size_t len,
                   std::uint32_t record_count, Record* dst)
{
    if (len < kStreamTableBytes)
        throw std::runtime_error(
            "trace::block: columnar payload missing its stream table");
    std::uint32_t lens[7];
    std::memcpy(lens, p, kStreamTableBytes);
    std::uint64_t total = kStreamTableBytes;
    for (const std::uint32_t l : lens)
        total += l;
    if (total != len)
        throw std::runtime_error(
            "trace::block: stream lengths disagree with the payload size");
    const std::uint8_t* streams[7];
    const std::uint8_t* s = p + kStreamTableBytes;
    for (int i = 0; i < 7; ++i) {
        streams[i] = s;
        s += lens[i];
    }

    DecodeScratch& sc = scratch();

    PayloadCursor dict_in{streams[0], streams[0] + lens[0]};
    readDict(dict_in, record_count, sc.dict);
    if (dict_in.p != dict_in.end)
        throw std::runtime_error(
            "trace::block: trailing bytes in the dictionary stream");
    const std::uint64_t dict_count = sc.dict.size();
    DictEntry* const dict = sc.dict.data();

    // Every core in the block appears in the dictionary, so one grow
    // up front keeps the record loop free of bounds housekeeping.
    sc.newEpoch();
    std::uint16_t max_core = 0;
    for (std::uint64_t k = 0; k < dict_count; ++k)
        max_core = std::max(max_core, dict[k].core);
    sc.ensure(max_core);
    std::uint32_t* const core_epoch = sc.core_epoch.data();
    std::uint32_t* const core_prev_ts = sc.core_prev_ts.data();

    // Fused pass: each record pulls its next value from all seven
    // cursors and lands in its final slot with one full 32-byte store —
    // the destination is touched exactly once, which is what lets the
    // whole-file decode keep up with the v1 memcpy it replaces.
    PayloadCursor idx_in{streams[1], streams[1] + lens[1]};
    PayloadCursor ts_in{streams[2], streams[2] + lens[2]};
    RunCursor a_in{{streams[3], streams[3] + lens[3]}, 0};
    RunCursor b_in{{streams[4], streams[4] + lens[4]}, 0};
    RunCursor c_in{{streams[5], streams[5] + lens[5]}, 0};
    RunCursor d_in{{streams[6], streams[6] + lens[6]}, 0};
    for (std::uint32_t i = 0; i < record_count; ++i) {
        const std::uint64_t idx = idx_in.varint();
        if (idx >= dict_count)
            throw std::runtime_error(
                "trace::block: dictionary index out of range at record " +
                std::to_string(i));
        DictEntry& e = dict[static_cast<std::size_t>(idx)];
        Record& r = dst[i];
        r.kind = e.kind;
        r.phase = e.phase;
        r.core = e.core;

        const std::uint64_t tv = ts_in.varint();
        if (core_epoch[e.core] != sc.epoch) {
            if (tv > 0xFFFFFFFFULL)
                throw std::runtime_error(
                    "trace::block: absolute timestamp out of range");
            r.timestamp = static_cast<std::uint32_t>(tv);
            core_epoch[e.core] = sc.epoch;
        } else {
            r.timestamp = core_prev_ts[e.core] +
                          static_cast<std::uint32_t>(unzigzag(tv));
        }
        core_prev_ts[e.core] = r.timestamp;

        r.a = e.pa +=
            e.qa += static_cast<std::uint64_t>(unzigzag(a_in.next()));
        r.b = e.pb +=
            e.qb += static_cast<std::uint64_t>(unzigzag(b_in.next()));
        r.c = e.pc +=
            e.qc += static_cast<std::uint32_t>(unzigzag(c_in.next()));
        r.d = e.pd +=
            e.qd += static_cast<std::uint32_t>(unzigzag(d_in.next()));
    }
    if (idx_in.p != idx_in.end)
        throw std::runtime_error(
            "trace::block: trailing bytes in the index stream");
    if (ts_in.p != ts_in.end)
        throw std::runtime_error(
            "trace::block: trailing bytes in the timestamp stream");
    a_in.finish("a");
    b_in.finish("b");
    c_in.finish("c");
    d_in.finish("d");
}

/** Payload dispatch on the (already validated) header. */
void
decodePayloadInto(const BlockHeader& hdr, const std::uint8_t* payload,
                  Record* dst)
{
    if (hdr.payload == kPayloadColumnar)
        decodeColumnarInto(payload, hdr.payload_size, hdr.record_count, dst);
    else
        decodeInterleavedInto(payload, hdr.payload_size, hdr.record_count,
                              dst);
}

// -------------------------------------------------------------------------
// Shared validation

/** Structural plausibility of a block header against the region's
 *  capacity — everything checkable without touching the body. */
bool
plausibleBlockHeader(const BlockHeader& bh, std::uint32_t capacity)
{
    return bh.magic == kBlockMagic && bh.record_count > 0 &&
           bh.record_count <= capacity && bh.seed_count <= 4096 &&
           (bh.payload == kPayloadInterleaved ||
            bh.payload == kPayloadColumnar) &&
           bh.uncompressed_size ==
               bh.record_count * static_cast<std::uint32_t>(sizeof(Record)) &&
           static_cast<std::uint64_t>(bh.seed_count) * sizeof(BlockSeed) +
                   bh.payload_size <=
               maxBlockBodyBytes(bh.record_count, bh.seed_count) &&
           bh.first_record < (std::uint64_t{1} << 48);
}

/** Structural plausibility of a region header (lengths unchecked). */
bool
plausibleRegionHeader(const BlockRegionHeader& rh)
{
    return rh.magic == kBlockRegionMagic && rh.version == kFormatVersionV3 &&
           rh.block_capacity >= 1 && rh.block_capacity <= kMaxBlockRecords &&
           rh.record_count < (std::uint64_t{1} << 48) &&
           rh.block_count ==
               (rh.record_count + rh.block_capacity - 1) / rh.block_capacity;
}

/** Salvage-note helper, same 16-note cap as the v1 salvage reader. */
void
note(ReadReport& rep, std::string text)
{
    constexpr std::size_t kMaxNotes = 16;
    rep.salvaged = true;
    if (rep.notes.size() < kMaxNotes)
        rep.notes.push_back(std::move(text));
    else if (rep.notes.size() == kMaxNotes)
        rep.notes.push_back("... further problems elided");
}

/** Read exactly @p n bytes from @p is or throw with context. */
void
readExact(std::istream& is, void* dst, std::size_t n, const char* what)
{
    is.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!is || static_cast<std::size_t>(is.gcount()) != n)
        throw std::runtime_error(std::string("trace::block: truncated ") +
                                 what);
}

} // namespace

// -------------------------------------------------------------------------
// Public codec

std::uint64_t
maxBlockBodyBytes(std::uint32_t record_count, std::uint32_t seed_count)
{
    // Varint worst cases: <= 3 bytes dict index (dict <= 2^20 entries),
    // 5 timestamp, 10 + 10 a/b, 5 + 5 c/d = 38 per record; <= 5 bytes
    // per dictionary entry (packed < 2^32) with at most one entry per
    // record; 10 for the dictionary count. The columnar layout adds a
    // 28-byte stream table and at worst 2 bytes for an isolated zero
    // delta (0x00 escape + count 1), both under the same envelope:
    // fixed 28 + 10 <= 64 and per-record 38 + 5 <= 48. So one bound,
    // 48/record + 64, covers both layouts.
    return static_cast<std::uint64_t>(seed_count) * sizeof(BlockSeed) + 64 +
           static_cast<std::uint64_t>(record_count) * 48;
}

std::vector<std::uint8_t>
encodeBlockRegion(const TraceData& trace, const Header& header,
                  std::uint64_t region_offset, std::uint32_t block_records,
                  bool legacy_payload)
{
    std::uint32_t capacity =
        block_records == 0 ? kDefaultBlockRecords : block_records;
    if (capacity > kMaxBlockRecords)
        capacity = kMaxBlockRecords;

    const std::uint32_t n_cores = header.num_spes + 1;
    const std::uint64_t count = trace.records.size();

    BlockRegionHeader rh;
    rh.block_capacity = capacity;
    rh.block_count = (count + capacity - 1) / capacity;
    rh.record_count = count;

    std::vector<std::uint8_t> out(sizeof(BlockRegionHeader)); // patched last
    std::vector<BlockDirEntry> dir;
    dir.reserve(static_cast<std::size_t>(rh.block_count));

    // Per-core replay state, mirroring buildIndex: the seeds written
    // for block k are the state a serial decode carries into record
    // k * capacity.
    struct CoreState
    {
        ClockReplay clk;
        std::uint64_t clamp = 0;
        std::uint64_t open = 0;
        std::uint64_t seen = 0;
    };
    std::vector<CoreState> cores(n_cores);

    std::vector<std::uint8_t> body;
    for (std::uint64_t first = 0; first < count; first += capacity) {
        const auto n = static_cast<std::size_t>(
            std::min<std::uint64_t>(capacity, count - first));

        body.clear();
        for (std::uint32_t c = 0; c < n_cores; ++c) {
            BlockSeed s;
            s.tick = cores[c].clamp;
            s.sync_tb = cores[c].clk.sync_tb;
            s.open_begins = cores[c].open;
            s.records_before = cores[c].seen;
            s.sync_raw = cores[c].clk.sync_raw;
            s.epoch = cores[c].clk.epoch;
            s.core = static_cast<std::uint16_t>(c);
            s.flags = cores[c].clk.have_sync ? kSeedHaveSync : 0;
            const auto* p = reinterpret_cast<const std::uint8_t*>(&s);
            body.insert(body.end(), p, p + sizeof(s));
        }
        const std::size_t seeds_bytes = body.size();
        if (legacy_payload)
            encodeInterleavedPayload(trace.records.data() + first, n, body);
        else
            encodeColumnarPayload(trace.records.data() + first, n, body);

        BlockHeader bh;
        bh.record_count = static_cast<std::uint32_t>(n);
        bh.payload_size = static_cast<std::uint32_t>(body.size() - seeds_bytes);
        bh.seed_count = n_cores;
        bh.first_record = first;
        // Columnar blocks use the word-lane FNV: the byte-serial form
        // runs at ~1 mul/byte and would dominate the decode time the
        // columnar layout exists to save. The payload bit that selects
        // the decoder selects the checksum algorithm too.
        bh.checksum = legacy_payload
                          ? fnv1a64Bytes(body.data(), body.size())
                          : fnv1a64Words(body.data(), body.size());
        bh.uncompressed_size =
            static_cast<std::uint32_t>(n * sizeof(Record));
        bh.payload = legacy_payload ? kPayloadInterleaved : kPayloadColumnar;

        BlockDirEntry de;
        de.offset = region_offset + out.size();
        de.block_bytes =
            static_cast<std::uint32_t>(sizeof(BlockHeader) + body.size());
        de.record_count = bh.record_count;
        dir.push_back(de);

        const auto* hp = reinterpret_cast<const std::uint8_t*>(&bh);
        out.insert(out.end(), hp, hp + sizeof(bh));
        out.insert(out.end(), body.begin(), body.end());

        // Advance the replay state through this block's records.
        for (std::size_t i = 0; i < n; ++i) {
            const Record& rec = trace.records[first + i];
            if (rec.core >= n_cores)
                continue;
            CoreState& c = cores[rec.core];
            c.seen += 1;
            std::uint64_t t = 0;
            if (!c.clk.feed(rec, t))
                continue;
            if (t < c.clamp)
                t = c.clamp;
            c.clamp = t;
            updateOpenBegins(c.open, rec);
        }
    }

    rh.directory_offset = region_offset + out.size();
    if (!dir.empty()) {
        const auto* dp = reinterpret_cast<const std::uint8_t*>(dir.data());
        out.insert(out.end(), dp, dp + dir.size() * sizeof(BlockDirEntry));
    }
    BlockDirTrailer tr;
    tr.dir_bytes = dir.size() * sizeof(BlockDirEntry);
    tr.checksum = fnv1a64Bytes(dir.data(), static_cast<std::size_t>(
                                               tr.dir_bytes));
    const auto* tp = reinterpret_cast<const std::uint8_t*>(&tr);
    out.insert(out.end(), tp, tp + sizeof(tr));

    std::memcpy(out.data(), &rh, sizeof(rh));
    return out;
}

namespace {

/** Shared structural validation: everything but the payload decode.
 *  Returns the seed-bytes length. */
std::uint64_t
validateBlockBody(const BlockHeader& hdr, const std::uint8_t* body,
                  std::size_t body_len, std::uint32_t capacity)
{
    if (!plausibleBlockHeader(hdr, capacity))
        throw std::runtime_error(
            "trace::block: implausible block header (record " +
            std::to_string(hdr.first_record) + ")");
    const std::uint64_t seeds_bytes =
        static_cast<std::uint64_t>(hdr.seed_count) * sizeof(BlockSeed);
    if (body_len != seeds_bytes + hdr.payload_size)
        throw std::runtime_error(
            "trace::block: body size disagrees with its header");
    const std::uint64_t sum = hdr.payload == kPayloadColumnar
                                  ? fnv1a64Words(body, body_len)
                                  : fnv1a64Bytes(body, body_len);
    if (sum != hdr.checksum)
        throw std::runtime_error(
            "trace::block: checksum mismatch in block at record " +
            std::to_string(hdr.first_record));
    return seeds_bytes;
}

} // namespace

void
decodeBlockBody(const BlockHeader& hdr, const std::uint8_t* body,
                std::size_t body_len, std::uint32_t capacity,
                DecodedBlock& out)
{
    const std::uint64_t seeds_bytes =
        validateBlockBody(hdr, body, body_len, capacity);
    out.header = hdr;
    out.seeds.resize(hdr.seed_count);
    if (hdr.seed_count > 0)
        std::memcpy(out.seeds.data(), body,
                    static_cast<std::size_t>(seeds_bytes));
    out.records.resize(hdr.record_count);
    decodePayloadInto(hdr, body + seeds_bytes, out.records.data());
}

void
decodeBlockBodyInto(const BlockHeader& hdr, const std::uint8_t* body,
                    std::size_t body_len, std::uint32_t capacity,
                    Record* dst)
{
    const std::uint64_t seeds_bytes =
        validateBlockBody(hdr, body, body_len, capacity);
    decodePayloadInto(hdr, body + seeds_bytes, dst);
}

// -------------------------------------------------------------------------
// Salvage walk

void
salvageBlockRegion(const std::uint8_t* data, std::size_t len,
                   std::uint64_t region_offset, std::uint32_t num_spes,
                   std::vector<Record>& raw, ReadReport& rep)
{
    if (len < sizeof(BlockRegionHeader)) {
        note(rep, "block region truncated before its header");
        rep.bytes_dropped += len;
        return;
    }
    BlockRegionHeader rh;
    std::memcpy(&rh, data, sizeof(rh));
    const bool rh_ok = plausibleRegionHeader(rh) &&
                       rh.directory_offset >=
                           region_offset + sizeof(BlockRegionHeader) &&
                       rh.directory_offset - region_offset <= len;
    std::uint64_t walk_end = len;
    std::uint32_t capacity = kMaxBlockRecords;
    if (rh_ok) {
        walk_end = rh.directory_offset - region_offset;
        capacity = rh.block_capacity;
    } else {
        note(rep, "block region header corrupt; scanning for blocks");
    }

    const std::uint32_t n_cores = num_spes + 1;
    struct CoreSt
    {
        bool have_sync = false;
        std::uint32_t sync_raw = 0;
        std::uint64_t sync_tb = 0;
        std::uint64_t decoded = 0;      ///< this core's records recovered
        std::uint64_t cum_dropped = 0;  ///< running drop-marker cumulative
    };
    std::vector<CoreSt> cores(n_cores);

    std::uint64_t next_ordinal = 0; ///< records accounted (decoded + lost)
    std::uint64_t good_bytes = 0;
    std::uint64_t pos = sizeof(BlockRegionHeader);
    DecodedBlock blk;

    while (pos + sizeof(BlockHeader) <= walk_end) {
        BlockHeader bh;
        std::memcpy(&bh, data + pos, sizeof(bh));
        const std::uint64_t body_len =
            static_cast<std::uint64_t>(bh.seed_count) * sizeof(BlockSeed) +
            bh.payload_size;
        // seed_count is deliberately NOT checked against n_cores: when
        // the FILE header's SPE count is the corrupt field, the blocks
        // (whose checksums still pass) are the ground truth.
        bool ok = plausibleBlockHeader(bh, capacity) &&
                  bh.first_record >= next_ordinal &&
                  pos + sizeof(BlockHeader) + body_len <= walk_end;
        if (ok) {
            try {
                decodeBlockBody(bh, data + pos + sizeof(BlockHeader),
                                static_cast<std::size_t>(body_len), capacity,
                                blk);
            } catch (const std::runtime_error& e) {
                note(rep, std::string(e.what()) + "; block dropped");
                ok = false;
            }
        }
        if (!ok) {
            // Resynchronize: scan byte-by-byte for the next block magic.
            std::uint64_t next = pos + 1;
            for (; next + sizeof(BlockHeader) <= walk_end; ++next) {
                std::uint32_t m;
                std::memcpy(&m, data + next, sizeof(m));
                if (m == kBlockMagic)
                    break;
            }
            pos = next;
            continue;
        }

        if (bh.first_record > next_ordinal) {
            const std::uint64_t lost = bh.first_record - next_ordinal;
            rep.records_skipped += lost;
            note(rep, "block gap: records " + std::to_string(next_ordinal) +
                          ".." + std::to_string(bh.first_record - 1) + " (" +
                          std::to_string(lost) + ") lost; resynced from "
                          "block seeds");
            // Resynchronize each core from the good block's seeds:
            // restore the clock mapping a full decode would have had
            // (synthetic sync) and mark the loss (synthetic drop with
            // the exact per-core count) so post-gap events place
            // identically and the analyzer flags the gap.
            for (const BlockSeed& s : blk.seeds) {
                if (s.core >= n_cores)
                    continue;
                CoreSt& c = cores[s.core];
                const std::uint64_t lost_c =
                    s.records_before > c.decoded ? s.records_before - c.decoded
                                                 : 0;
                if ((s.flags & kSeedHaveSync) != 0 &&
                    (!c.have_sync || c.sync_raw != s.sync_raw ||
                     c.sync_tb != s.sync_tb)) {
                    Record sync{};
                    sync.kind = kSyncRecord;
                    sync.core = s.core;
                    sync.timestamp = s.sync_raw;
                    sync.a = s.sync_raw;
                    sync.b = s.sync_tb;
                    raw.push_back(sync);
                    c.have_sync = true;
                    c.sync_raw = s.sync_raw;
                    c.sync_tb = s.sync_tb;
                }
                if (lost_c > 0 && c.have_sync) {
                    // Place the marker at the seed tick when it is
                    // representable from the mapping; the analyzer's
                    // monotonic clamp absorbs any shortfall.
                    const std::uint64_t delta =
                        s.tick >= s.sync_tb &&
                                s.tick - s.sync_tb <= 0xFFFFFFFFULL
                            ? s.tick - s.sync_tb
                            : 0;
                    Record drop{};
                    drop.kind = kDropRecord;
                    drop.core = s.core;
                    drop.timestamp =
                        s.core != 0
                            ? c.sync_raw - static_cast<std::uint32_t>(delta)
                            : c.sync_raw + static_cast<std::uint32_t>(delta);
                    drop.a = lost_c;
                    drop.b = c.cum_dropped += lost_c;
                    raw.push_back(drop);
                }
                if (lost_c > 0)
                    c.decoded = s.records_before;
            }
        }

        for (const Record& r : blk.records) {
            raw.push_back(r);
            if (r.core >= n_cores)
                continue;
            CoreSt& c = cores[r.core];
            c.decoded += 1;
            if (r.kind == kSyncRecord) {
                c.have_sync = true;
                c.sync_raw = static_cast<std::uint32_t>(r.a);
                c.sync_tb = r.b;
            } else if (r.kind == kDropRecord) {
                c.cum_dropped = r.b;
            }
        }
        next_ordinal = bh.first_record + bh.record_count;
        good_bytes += sizeof(BlockHeader) + body_len;
        pos += sizeof(BlockHeader) + body_len;
    }

    if (rh_ok && rh.record_count > next_ordinal) {
        const std::uint64_t lost = rh.record_count - next_ordinal;
        rep.records_skipped += lost;
        note(rep, "trailing blocks lost: records " +
                      std::to_string(next_ordinal) + ".." +
                      std::to_string(rh.record_count - 1) + " (" +
                      std::to_string(lost) + ")");
    }
    const std::uint64_t walked = walk_end - sizeof(BlockRegionHeader);
    if (walked > good_bytes)
        rep.bytes_dropped += walked - good_bytes;
}

// -------------------------------------------------------------------------
// Streaming reader

BlockReader::BlockReader(std::istream& is) : is_(&is) { parseHeaders(); }

BlockReader::BlockReader(const std::string& path) : map_(path)
{
    if (map_.valid()) {
        mem_ = map_.data();
        mem_len_ = map_.size();
    } else {
        // Not mappable (FIFO, /proc-style pseudo-file, no mmap on this
        // platform): buffered stream reads produce identical output.
        owned_is_ = std::make_unique<std::ifstream>(path, std::ios::binary);
        if (!*owned_is_)
            throw std::runtime_error("trace::BlockReader: cannot open " +
                                     path);
        is_ = owned_is_.get();
    }
    parseHeaders();
}

BlockReader::~BlockReader()
{
    // In-flight decodes hold raw pointers into the inflight slots (and
    // the mapping); let them land before anything is torn down.
    for (const std::unique_ptr<Inflight>& inf : inflight_) {
        if (inf->done.valid())
            inf->done.wait();
    }
}

void
BlockReader::readSeq(void* dst, std::size_t n, const char* what)
{
    if (mem_ != nullptr) {
        if (seq_pos_ > mem_len_ || n > mem_len_ - seq_pos_)
            throw std::runtime_error(std::string("trace::block: truncated ") +
                                     what);
        std::memcpy(dst, mem_ + seq_pos_, n);
        seq_pos_ += n;
        return;
    }
    readExact(*is_, dst, n, what);
}

void
BlockReader::parseHeaders()
{
    std::uint64_t at = 0;
    if (is_ != nullptr) {
        const auto base = is_->tellg();
        if (base != std::streampos(-1))
            at = static_cast<std::uint64_t>(base);
        is_->clear();
    }

    readSeq(&header_, sizeof(header_), "file header");
    at += sizeof(header_);
    if (header_.magic != kMagic)
        throw std::runtime_error(
            "trace::BlockReader: bad magic (not a PDT trace)");
    if (header_.version != kFormatVersionV3)
        throw std::runtime_error(
            "trace::BlockReader: not a v3 compressed trace (version " +
            std::to_string(header_.version) + ")");

    names_.resize(header_.num_spes);
    for (std::string& name : names_) {
        std::uint32_t nlen = 0;
        readSeq(&nlen, sizeof(nlen), "name table");
        if (nlen > (1u << 20))
            throw std::runtime_error(
                "trace::BlockReader: implausible name length " +
                std::to_string(nlen));
        name.resize(nlen);
        readSeq(name.data(), nlen, "name table");
        at += sizeof(nlen) + nlen;
    }

    region_offset_ = at;
    readSeq(&region_, sizeof(region_), "block region header");
    if (!plausibleRegionHeader(region_) ||
        region_.record_count != header_.record_count)
        throw std::runtime_error(
            "trace::BlockReader: corrupt block region header");
    next_offset_ = at + sizeof(region_);
    header_.version = kFormatVersion; // decode is transparent
}

void
BlockReader::pipeline(util::WorkerPool& pool, unsigned window)
{
    pool_ = &pool;
    window_ = std::min(std::max(window, 1u), 16u);
}

bool
BlockReader::startPrefetch()
{
    // Source-side cursor: the consumer is at next_block_, the source
    // has additionally been read ahead by the in-flight count.
    const std::uint64_t k = next_block_ + inflight_.size();
    if (src_failed_ || k >= region_.block_count)
        return false;

    std::unique_ptr<Inflight> inf;
    if (!free_.empty()) {
        inf = std::move(free_.back());
        free_.pop_back();
        inf->error = nullptr;
        inf->done = std::future<void>();
    } else {
        inf = std::make_unique<Inflight>();
    }
    const std::uint8_t* body = nullptr;
    std::size_t body_len = 0;
    try {
        if (mem_ != nullptr) {
            seq_pos_ = next_offset_;
        } else {
            // Re-seek when possible so next() composes with
            // readBlock(); a non-seekable stream is simply assumed
            // still in sequence.
            is_->clear();
            const auto pos = is_->tellg();
            if (pos != std::streampos(-1) &&
                static_cast<std::uint64_t>(pos) != next_offset_)
                is_->seekg(static_cast<std::streamoff>(next_offset_));
        }

        BlockHeader& bh = inf->header;
        readSeq(&bh, sizeof(bh), "block header");
        if (!plausibleBlockHeader(bh, region_.block_capacity) ||
            bh.first_record != next_first_)
            throw std::runtime_error(
                "trace::BlockReader: corrupt block header at block " +
                std::to_string(k));
        const std::uint64_t expect = std::min<std::uint64_t>(
            region_.block_capacity, region_.record_count - next_first_);
        if (bh.record_count != expect)
            throw std::runtime_error(
                "trace::BlockReader: block " + std::to_string(k) +
                " claims " + std::to_string(bh.record_count) + " records, " +
                std::to_string(expect) + " expected");

        body_len = static_cast<std::size_t>(bh.seed_count) *
                       sizeof(BlockSeed) +
                   bh.payload_size;
        if (mem_ != nullptr) {
            if (seq_pos_ > mem_len_ || body_len > mem_len_ - seq_pos_)
                throw std::runtime_error(
                    "trace::block: truncated block body");
            body = mem_ + seq_pos_; // zero copy off the mapping
            seq_pos_ += body_len;
        } else {
            inf->body.resize(body_len);
            readSeq(inf->body.data(), body_len, "block body");
            body = inf->body.data();
        }
        next_offset_ += sizeof(BlockHeader) + body_len;
        next_first_ += inf->header.record_count;
    } catch (...) {
        // Surface the failure when the consumer reaches this block —
        // not while it is still draining earlier, intact ones — and
        // stop reading a source whose cursor is now undefined.
        inf->error = std::current_exception();
        src_failed_ = true;
        inflight_.push_back(std::move(inf));
        return false;
    }

    const std::uint32_t capacity = region_.block_capacity;
    Inflight* raw = inf.get();
    auto decode = [raw, body, body_len, capacity]() {
        try {
            decodeBlockBody(raw->header, body, body_len, capacity,
                            raw->block);
        } catch (...) {
            raw->error = std::current_exception();
        }
    };
    if (pool_ != nullptr)
        inf->done = pool_->submit(decode);
    else
        decode();
    inflight_.push_back(std::move(inf));
    return true;
}

bool
BlockReader::next(DecodedBlock& out)
{
    const unsigned window = pool_ != nullptr ? window_ : 1;
    while (inflight_.size() < window && startPrefetch()) {
    }
    if (inflight_.empty())
        return false;

    std::unique_ptr<Inflight> inf = std::move(inflight_.front());
    inflight_.pop_front();
    if (inf->done.valid())
        inf->done.get(); // decode errors land in inf->error, not here
    if (inf->error)
        std::rethrow_exception(inf->error);
    // Swap rather than move: the caller's previous block buffers flow
    // back into the slot pool, so steady state allocates nothing.
    std::swap(out, inf->block);
    free_.push_back(std::move(inf));
    next_block_ += 1;
    return true;
}

const std::vector<BlockDirEntry>&
BlockReader::directory()
{
    if (!have_directory_) {
        directory_ = mem_ != nullptr
                         ? loadBlockDirectory(mem_, mem_len_, region_offset_,
                                              region_)
                         : loadBlockDirectory(*is_, region_offset_, region_);
        have_directory_ = true;
    }
    return directory_;
}

void
BlockReader::readBlock(std::uint64_t index, DecodedBlock& out)
{
    const std::vector<BlockDirEntry>& dir = directory();
    if (index >= dir.size())
        throw std::runtime_error("trace::BlockReader: block index " +
                                 std::to_string(index) + " out of range");
    const BlockDirEntry& de = dir[index];
    BlockHeader bh;
    if (mem_ != nullptr) {
        if (de.block_bytes < sizeof(bh) || de.offset > mem_len_ ||
            de.block_bytes > mem_len_ - de.offset)
            throw std::runtime_error("trace::block: truncated block header");
        std::memcpy(&bh, mem_ + de.offset, sizeof(bh));
        if (bh.record_count != de.record_count ||
            sizeof(bh) + static_cast<std::uint64_t>(bh.seed_count) *
                             sizeof(BlockSeed) +
                bh.payload_size !=
                de.block_bytes)
            throw std::runtime_error(
                "trace::BlockReader: block disagrees with the directory at "
                "block " +
                std::to_string(index));
        decodeBlockBody(bh, mem_ + de.offset + sizeof(bh),
                        de.block_bytes - sizeof(bh), region_.block_capacity,
                        out);
        return;
    }
    is_->clear();
    is_->seekg(static_cast<std::streamoff>(de.offset));
    readExact(*is_, &bh, sizeof(bh), "block header");
    if (bh.record_count != de.record_count ||
        sizeof(bh) + static_cast<std::uint64_t>(bh.seed_count) *
                         sizeof(BlockSeed) +
            bh.payload_size !=
            de.block_bytes)
        throw std::runtime_error(
            "trace::BlockReader: block disagrees with the directory at "
            "block " +
            std::to_string(index));
    const std::size_t body_len = de.block_bytes - sizeof(bh);
    std::vector<std::uint8_t> body(body_len);
    readExact(*is_, body.data(), body_len, "block body");
    decodeBlockBody(bh, body.data(), body_len, region_.block_capacity, out);
}

// -------------------------------------------------------------------------
// Directory loading

namespace {

/** Directory load over any random-access source. @p readAt copies n
 *  bytes from an absolute offset, returning false on a short read. */
template <typename ReadAt>
std::vector<BlockDirEntry>
loadDirectoryImpl(const ReadAt& readAt, std::uint64_t region_offset,
                  const BlockRegionHeader& region)
{
    const std::uint64_t first_block =
        region_offset + sizeof(BlockRegionHeader);

    // Primary path: the committed directory, fully validated.
    auto tryDirectory = [&]() -> std::vector<BlockDirEntry> {
        std::vector<BlockDirEntry> dir(
            static_cast<std::size_t>(region.block_count));
        const std::uint64_t dir_bytes = dir.size() * sizeof(BlockDirEntry);
        BlockDirTrailer tr;
        if ((!dir.empty() &&
             !readAt(region.directory_offset, dir.data(), dir_bytes)) ||
            !readAt(region.directory_offset + dir_bytes, &tr, sizeof(tr)))
            throw std::runtime_error("trace::block: directory unreadable");
        if (tr.magic != kBlockRegionMagic ||
            tr.dir_bytes != dir.size() * sizeof(BlockDirEntry) ||
            fnv1a64Bytes(dir.data(),
                         static_cast<std::size_t>(tr.dir_bytes)) !=
                tr.checksum)
            throw std::runtime_error("trace::block: directory corrupt");

        std::uint64_t expect_off = first_block;
        std::uint64_t records = 0;
        for (std::size_t i = 0; i < dir.size(); ++i) {
            const BlockDirEntry& de = dir[i];
            const std::uint64_t expect_count = std::min<std::uint64_t>(
                region.block_capacity, region.record_count - records);
            if (de.offset != expect_off ||
                de.block_bytes < sizeof(BlockHeader) ||
                de.record_count != expect_count)
                throw std::runtime_error(
                    "trace::block: directory entries inconsistent");
            expect_off += de.block_bytes;
            records += de.record_count;
        }
        if (records != region.record_count ||
            expect_off != region.directory_offset)
            throw std::runtime_error(
                "trace::block: directory does not cover the region");
        return dir;
    };

    // Fallback: rebuild the directory by walking the block headers —
    // the blocks are self-describing, so a damaged directory does not
    // take the parallel readers down with it.
    auto walkBlocks = [&]() -> std::vector<BlockDirEntry> {
        std::vector<BlockDirEntry> dir;
        dir.reserve(static_cast<std::size_t>(region.block_count));
        std::uint64_t off = first_block;
        std::uint64_t records = 0;
        for (std::uint64_t i = 0; i < region.block_count; ++i) {
            BlockHeader bh;
            if (!readAt(off, &bh, sizeof(bh)))
                throw std::runtime_error(
                    "trace::block: truncated block header");
            if (!plausibleBlockHeader(bh, region.block_capacity) ||
                bh.first_record != records)
                throw std::runtime_error(
                    "trace::block: corrupt block header at block " +
                    std::to_string(i) + " while rebuilding the directory");
            BlockDirEntry de;
            de.offset = off;
            de.block_bytes = static_cast<std::uint32_t>(
                sizeof(BlockHeader) +
                static_cast<std::uint64_t>(bh.seed_count) *
                    sizeof(BlockSeed) +
                bh.payload_size);
            de.record_count = bh.record_count;
            dir.push_back(de);
            off += de.block_bytes;
            records += bh.record_count;
        }
        if (records != region.record_count)
            throw std::runtime_error(
                "trace::block: walked blocks do not cover the region");
        return dir;
    };

    try {
        return tryDirectory();
    } catch (const std::runtime_error&) {
        return walkBlocks(); // throws if the blocks are damaged too
    }
}

} // namespace

std::vector<BlockDirEntry>
loadBlockDirectory(std::istream& is, std::uint64_t region_offset,
                   const BlockRegionHeader& region)
{
    const auto saved = is.tellg();
    if (saved == std::streampos(-1)) {
        is.clear();
        throw std::runtime_error(
            "trace::block: directory access needs a seekable stream");
    }
    auto readAt = [&is](std::uint64_t off, void* dst, std::size_t n) -> bool {
        is.clear();
        is.seekg(static_cast<std::streamoff>(off));
        is.read(reinterpret_cast<char*>(dst),
                static_cast<std::streamsize>(n));
        return static_cast<bool>(is) &&
               static_cast<std::size_t>(is.gcount()) == n;
    };
    std::vector<BlockDirEntry> dir =
        loadDirectoryImpl(readAt, region_offset, region);
    is.clear();
    is.seekg(saved);
    return dir;
}

std::vector<BlockDirEntry>
loadBlockDirectory(const std::uint8_t* file, std::size_t file_len,
                   std::uint64_t region_offset,
                   const BlockRegionHeader& region)
{
    auto readAt = [file, file_len](std::uint64_t off, void* dst,
                                   std::size_t n) -> bool {
        if (off > file_len || n > file_len - off)
            return false;
        std::memcpy(dst, file + off, n);
        return true;
    };
    return loadDirectoryImpl(readAt, region_offset, region);
}

// -------------------------------------------------------------------------
// Probe

BlockRegionProbe
probeBlockRegion(std::istream& is)
{
    BlockRegionProbe probe;
    const auto saved = is.tellg();
    try {
        Header fh;
        readExact(is, &fh, sizeof(fh), "file header");
        if (fh.magic != kMagic || fh.version != kFormatVersionV3)
            throw std::runtime_error("not v3");
        for (std::uint32_t i = 0; i < fh.num_spes; ++i) {
            std::uint32_t nlen = 0;
            readExact(is, &nlen, sizeof(nlen), "name table");
            if (nlen > (1u << 20))
                throw std::runtime_error("bad name");
            is.seekg(static_cast<std::streamoff>(nlen), std::ios::cur);
            if (!is)
                throw std::runtime_error("bad name table");
        }
        const auto region_pos = is.tellg();
        BlockRegionHeader rh;
        readExact(is, &rh, sizeof(rh), "block region header");
        if (!plausibleRegionHeader(rh) || rh.record_count != fh.record_count)
            throw std::runtime_error("bad region header");
        probe.present = true;
        probe.region = rh;
        if (region_pos != std::streampos(-1)) {
            probe.region_bytes =
                rh.directory_offset +
                rh.block_count * sizeof(BlockDirEntry) +
                sizeof(BlockDirTrailer) -
                static_cast<std::uint64_t>(region_pos);
        }
    } catch (const std::exception&) {
        probe = BlockRegionProbe{};
    }
    is.clear();
    if (saved != std::streampos(-1))
        is.seekg(saved);
    return probe;
}

BlockRegionProbe
probeBlockRegionFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return {};
    return probeBlockRegion(is);
}

} // namespace cell::trace
