/**
 * @file
 * v3 block codec: varint payload encode/decode, region writer, the
 * salvage walk, the streaming BlockReader, and directory loading.
 *
 * Exactness argument for the delta scheme: every delta is computed
 * with modular (two's-complement) subtraction and re-applied with
 * modular addition, so encode/decode round-trips ARBITRARY field
 * values — including the garbage fields of deliberately-messy test
 * traces — not just well-formed ones. Zigzag only affects how many
 * varint bytes a delta costs, never whether it survives.
 */

#include "trace/block.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <unordered_map>

#include "trace/index.h"
#include "trace/replay.h"

namespace cell::trace {

namespace {

// -------------------------------------------------------------------------
// Varint / zigzag primitives

void
appendVarint(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t z)
{
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
}

/** Bounded varint reader over a block payload. */
struct PayloadCursor
{
    const std::uint8_t* p;
    const std::uint8_t* end;

    std::uint64_t varint()
    {
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            if (p == end)
                throw std::runtime_error(
                    "trace::block: payload truncated inside a varint");
            const std::uint8_t byte = *p++;
            if (shift >= 63 && byte > 1)
                throw std::runtime_error(
                    "trace::block: varint overflows 64 bits");
            v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0)
                return v;
            shift += 7;
        }
    }
};

// -------------------------------------------------------------------------
// Payload codec

/** Dictionary entry: one (kind, phase, core) triple plus the previous
 *  payload words of its last record (delta bases). */
struct DictEntry
{
    std::uint8_t kind = 0;
    std::uint8_t phase = 0;
    std::uint16_t core = 0;
    std::uint64_t pa = 0, pb = 0;
    std::uint32_t pc = 0, pd = 0;
};

/** Per-core timestamp delta chain (slot order = first appearance). */
struct CoreSlot
{
    std::uint16_t core = 0;
    std::uint32_t prev_ts = 0;
    bool have_ts = false;
};

std::uint32_t
dictKey(const Record& r)
{
    return (static_cast<std::uint32_t>(r.core) << 16) |
           (static_cast<std::uint32_t>(r.phase) << 8) | r.kind;
}

void
encodePayload(const Record* recs, std::size_t n,
              std::vector<std::uint8_t>& out)
{
    std::vector<DictEntry> dict;
    std::unordered_map<std::uint32_t, std::uint32_t> dict_of;
    dict_of.reserve(64);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t key = dictKey(recs[i]);
        if (dict_of.emplace(key, dict.size()).second) {
            DictEntry e;
            e.kind = recs[i].kind;
            e.phase = recs[i].phase;
            e.core = recs[i].core;
            dict.push_back(e);
        }
    }

    appendVarint(out, dict.size());
    for (const DictEntry& e : dict) {
        appendVarint(out, (static_cast<std::uint64_t>(e.core) << 16) |
                              (static_cast<std::uint64_t>(e.phase) << 8) |
                              e.kind);
    }

    std::vector<CoreSlot> slots;
    auto slotOf = [&slots](std::uint16_t core) -> CoreSlot& {
        for (CoreSlot& s : slots) {
            if (s.core == core)
                return s;
        }
        slots.push_back(CoreSlot{core, 0, false});
        return slots.back();
    };

    for (std::size_t i = 0; i < n; ++i) {
        const Record& r = recs[i];
        const std::uint32_t idx = dict_of.find(dictKey(r))->second;
        DictEntry& e = dict[idx];
        appendVarint(out, idx);

        CoreSlot& s = slotOf(r.core);
        if (!s.have_ts) {
            appendVarint(out, r.timestamp);
            s.have_ts = true;
        } else {
            const auto d = static_cast<std::int32_t>(r.timestamp - s.prev_ts);
            appendVarint(out, zigzag(d));
        }
        s.prev_ts = r.timestamp;

        appendVarint(out, zigzag(static_cast<std::int64_t>(r.a - e.pa)));
        appendVarint(out, zigzag(static_cast<std::int64_t>(r.b - e.pb)));
        appendVarint(
            out, zigzag(static_cast<std::int32_t>(r.c - e.pc)));
        appendVarint(
            out, zigzag(static_cast<std::int32_t>(r.d - e.pd)));
        e.pa = r.a;
        e.pb = r.b;
        e.pc = r.c;
        e.pd = r.d;
    }
}

void
decodePayload(const std::uint8_t* p, std::size_t len,
              std::uint32_t record_count, std::vector<Record>& out)
{
    PayloadCursor in{p, p + len};

    const std::uint64_t dict_count = in.varint();
    if (dict_count > record_count || (record_count > 0 && dict_count == 0))
        throw std::runtime_error(
            "trace::block: dictionary size implausible (" +
            std::to_string(dict_count) + " entries, " +
            std::to_string(record_count) + " records)");
    std::vector<DictEntry> dict(static_cast<std::size_t>(dict_count));
    for (DictEntry& e : dict) {
        const std::uint64_t packed = in.varint();
        if (packed > 0xFFFFFFFFULL)
            throw std::runtime_error(
                "trace::block: dictionary entry out of range");
        e.core = static_cast<std::uint16_t>(packed >> 16);
        e.phase = static_cast<std::uint8_t>(packed >> 8);
        e.kind = static_cast<std::uint8_t>(packed);
    }

    std::vector<CoreSlot> slots;
    auto slotOf = [&slots](std::uint16_t core) -> CoreSlot& {
        for (CoreSlot& s : slots) {
            if (s.core == core)
                return s;
        }
        slots.push_back(CoreSlot{core, 0, false});
        return slots.back();
    };

    out.clear();
    out.reserve(record_count);
    for (std::uint32_t i = 0; i < record_count; ++i) {
        const std::uint64_t idx = in.varint();
        if (idx >= dict_count)
            throw std::runtime_error(
                "trace::block: dictionary index out of range at record " +
                std::to_string(i));
        DictEntry& e = dict[static_cast<std::size_t>(idx)];

        Record r{};
        r.kind = e.kind;
        r.phase = e.phase;
        r.core = e.core;

        CoreSlot& s = slotOf(e.core);
        const std::uint64_t tv = in.varint();
        if (!s.have_ts) {
            if (tv > 0xFFFFFFFFULL)
                throw std::runtime_error(
                    "trace::block: absolute timestamp out of range");
            r.timestamp = static_cast<std::uint32_t>(tv);
            s.have_ts = true;
        } else {
            r.timestamp =
                s.prev_ts + static_cast<std::uint32_t>(unzigzag(tv));
        }
        s.prev_ts = r.timestamp;

        r.a = e.pa + static_cast<std::uint64_t>(unzigzag(in.varint()));
        r.b = e.pb + static_cast<std::uint64_t>(unzigzag(in.varint()));
        r.c = e.pc + static_cast<std::uint32_t>(unzigzag(in.varint()));
        r.d = e.pd + static_cast<std::uint32_t>(unzigzag(in.varint()));
        e.pa = r.a;
        e.pb = r.b;
        e.pc = r.c;
        e.pd = r.d;
        out.push_back(r);
    }
    if (in.p != in.end)
        throw std::runtime_error("trace::block: trailing payload bytes");
}

// -------------------------------------------------------------------------
// Shared validation

/** Structural plausibility of a block header against the region's
 *  capacity — everything checkable without touching the body. */
bool
plausibleBlockHeader(const BlockHeader& bh, std::uint32_t capacity)
{
    return bh.magic == kBlockMagic && bh.record_count > 0 &&
           bh.record_count <= capacity && bh.seed_count <= 4096 &&
           bh.uncompressed_size ==
               bh.record_count * static_cast<std::uint32_t>(sizeof(Record)) &&
           static_cast<std::uint64_t>(bh.seed_count) * sizeof(BlockSeed) +
                   bh.payload_size <=
               maxBlockBodyBytes(bh.record_count, bh.seed_count) &&
           bh.first_record < (std::uint64_t{1} << 48);
}

/** Structural plausibility of a region header (lengths unchecked). */
bool
plausibleRegionHeader(const BlockRegionHeader& rh)
{
    return rh.magic == kBlockRegionMagic && rh.version == kFormatVersionV3 &&
           rh.block_capacity >= 1 && rh.block_capacity <= kMaxBlockRecords &&
           rh.record_count < (std::uint64_t{1} << 48) &&
           rh.block_count ==
               (rh.record_count + rh.block_capacity - 1) / rh.block_capacity;
}

/** Salvage-note helper, same 16-note cap as the v1 salvage reader. */
void
note(ReadReport& rep, std::string text)
{
    constexpr std::size_t kMaxNotes = 16;
    rep.salvaged = true;
    if (rep.notes.size() < kMaxNotes)
        rep.notes.push_back(std::move(text));
    else if (rep.notes.size() == kMaxNotes)
        rep.notes.push_back("... further problems elided");
}

/** Read exactly @p n bytes from @p is or throw with context. */
void
readExact(std::istream& is, void* dst, std::size_t n, const char* what)
{
    is.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!is || static_cast<std::size_t>(is.gcount()) != n)
        throw std::runtime_error(std::string("trace::block: truncated ") +
                                 what);
}

} // namespace

// -------------------------------------------------------------------------
// Public codec

std::uint64_t
maxBlockBodyBytes(std::uint32_t record_count, std::uint32_t seed_count)
{
    // Varint worst cases: <= 3 bytes dict index (dict <= 2^20 entries),
    // 5 timestamp, 10 + 10 a/b, 5 + 5 c/d = 38 per record; <= 5 bytes
    // per dictionary entry (packed < 2^32) with at most one entry per
    // record; 10 for the dictionary count. 48/record + 64 covers all.
    return static_cast<std::uint64_t>(seed_count) * sizeof(BlockSeed) + 64 +
           static_cast<std::uint64_t>(record_count) * 48;
}

std::vector<std::uint8_t>
encodeBlockRegion(const TraceData& trace, const Header& header,
                  std::uint64_t region_offset, std::uint32_t block_records)
{
    std::uint32_t capacity =
        block_records == 0 ? kDefaultBlockRecords : block_records;
    if (capacity > kMaxBlockRecords)
        capacity = kMaxBlockRecords;

    const std::uint32_t n_cores = header.num_spes + 1;
    const std::uint64_t count = trace.records.size();

    BlockRegionHeader rh;
    rh.block_capacity = capacity;
    rh.block_count = (count + capacity - 1) / capacity;
    rh.record_count = count;

    std::vector<std::uint8_t> out(sizeof(BlockRegionHeader)); // patched last
    std::vector<BlockDirEntry> dir;
    dir.reserve(static_cast<std::size_t>(rh.block_count));

    // Per-core replay state, mirroring buildIndex: the seeds written
    // for block k are the state a serial decode carries into record
    // k * capacity.
    struct CoreState
    {
        ClockReplay clk;
        std::uint64_t clamp = 0;
        std::uint64_t open = 0;
        std::uint64_t seen = 0;
    };
    std::vector<CoreState> cores(n_cores);

    std::vector<std::uint8_t> body;
    for (std::uint64_t first = 0; first < count; first += capacity) {
        const auto n = static_cast<std::size_t>(
            std::min<std::uint64_t>(capacity, count - first));

        body.clear();
        for (std::uint32_t c = 0; c < n_cores; ++c) {
            BlockSeed s;
            s.tick = cores[c].clamp;
            s.sync_tb = cores[c].clk.sync_tb;
            s.open_begins = cores[c].open;
            s.records_before = cores[c].seen;
            s.sync_raw = cores[c].clk.sync_raw;
            s.epoch = cores[c].clk.epoch;
            s.core = static_cast<std::uint16_t>(c);
            s.flags = cores[c].clk.have_sync ? kSeedHaveSync : 0;
            const auto* p = reinterpret_cast<const std::uint8_t*>(&s);
            body.insert(body.end(), p, p + sizeof(s));
        }
        const std::size_t seeds_bytes = body.size();
        encodePayload(trace.records.data() + first, n, body);

        BlockHeader bh;
        bh.record_count = static_cast<std::uint32_t>(n);
        bh.payload_size = static_cast<std::uint32_t>(body.size() - seeds_bytes);
        bh.seed_count = n_cores;
        bh.first_record = first;
        bh.checksum = fnv1a64Bytes(body.data(), body.size());
        bh.uncompressed_size =
            static_cast<std::uint32_t>(n * sizeof(Record));

        BlockDirEntry de;
        de.offset = region_offset + out.size();
        de.block_bytes =
            static_cast<std::uint32_t>(sizeof(BlockHeader) + body.size());
        de.record_count = bh.record_count;
        dir.push_back(de);

        const auto* hp = reinterpret_cast<const std::uint8_t*>(&bh);
        out.insert(out.end(), hp, hp + sizeof(bh));
        out.insert(out.end(), body.begin(), body.end());

        // Advance the replay state through this block's records.
        for (std::size_t i = 0; i < n; ++i) {
            const Record& rec = trace.records[first + i];
            if (rec.core >= n_cores)
                continue;
            CoreState& c = cores[rec.core];
            c.seen += 1;
            std::uint64_t t = 0;
            if (!c.clk.feed(rec, t))
                continue;
            if (t < c.clamp)
                t = c.clamp;
            c.clamp = t;
            updateOpenBegins(c.open, rec);
        }
    }

    rh.directory_offset = region_offset + out.size();
    if (!dir.empty()) {
        const auto* dp = reinterpret_cast<const std::uint8_t*>(dir.data());
        out.insert(out.end(), dp, dp + dir.size() * sizeof(BlockDirEntry));
    }
    BlockDirTrailer tr;
    tr.dir_bytes = dir.size() * sizeof(BlockDirEntry);
    tr.checksum = fnv1a64Bytes(dir.data(), static_cast<std::size_t>(
                                               tr.dir_bytes));
    const auto* tp = reinterpret_cast<const std::uint8_t*>(&tr);
    out.insert(out.end(), tp, tp + sizeof(tr));

    std::memcpy(out.data(), &rh, sizeof(rh));
    return out;
}

void
decodeBlockBody(const BlockHeader& hdr, const std::uint8_t* body,
                std::size_t body_len, std::uint32_t capacity,
                DecodedBlock& out)
{
    if (!plausibleBlockHeader(hdr, capacity))
        throw std::runtime_error(
            "trace::block: implausible block header (record " +
            std::to_string(hdr.first_record) + ")");
    const std::uint64_t seeds_bytes =
        static_cast<std::uint64_t>(hdr.seed_count) * sizeof(BlockSeed);
    if (body_len != seeds_bytes + hdr.payload_size)
        throw std::runtime_error(
            "trace::block: body size disagrees with its header");
    if (fnv1a64Bytes(body, body_len) != hdr.checksum)
        throw std::runtime_error(
            "trace::block: checksum mismatch in block at record " +
            std::to_string(hdr.first_record));

    out.header = hdr;
    out.seeds.resize(hdr.seed_count);
    if (hdr.seed_count > 0)
        std::memcpy(out.seeds.data(), body,
                    static_cast<std::size_t>(seeds_bytes));
    decodePayload(body + seeds_bytes, hdr.payload_size, hdr.record_count,
                  out.records);
}

// -------------------------------------------------------------------------
// Salvage walk

void
salvageBlockRegion(const std::uint8_t* data, std::size_t len,
                   std::uint64_t region_offset, std::uint32_t num_spes,
                   std::vector<Record>& raw, ReadReport& rep)
{
    if (len < sizeof(BlockRegionHeader)) {
        note(rep, "block region truncated before its header");
        rep.bytes_dropped += len;
        return;
    }
    BlockRegionHeader rh;
    std::memcpy(&rh, data, sizeof(rh));
    const bool rh_ok = plausibleRegionHeader(rh) &&
                       rh.directory_offset >=
                           region_offset + sizeof(BlockRegionHeader) &&
                       rh.directory_offset - region_offset <= len;
    std::uint64_t walk_end = len;
    std::uint32_t capacity = kMaxBlockRecords;
    if (rh_ok) {
        walk_end = rh.directory_offset - region_offset;
        capacity = rh.block_capacity;
    } else {
        note(rep, "block region header corrupt; scanning for blocks");
    }

    const std::uint32_t n_cores = num_spes + 1;
    struct CoreSt
    {
        bool have_sync = false;
        std::uint32_t sync_raw = 0;
        std::uint64_t sync_tb = 0;
        std::uint64_t decoded = 0;      ///< this core's records recovered
        std::uint64_t cum_dropped = 0;  ///< running drop-marker cumulative
    };
    std::vector<CoreSt> cores(n_cores);

    std::uint64_t next_ordinal = 0; ///< records accounted (decoded + lost)
    std::uint64_t good_bytes = 0;
    std::uint64_t pos = sizeof(BlockRegionHeader);
    DecodedBlock blk;

    while (pos + sizeof(BlockHeader) <= walk_end) {
        BlockHeader bh;
        std::memcpy(&bh, data + pos, sizeof(bh));
        const std::uint64_t body_len =
            static_cast<std::uint64_t>(bh.seed_count) * sizeof(BlockSeed) +
            bh.payload_size;
        // seed_count is deliberately NOT checked against n_cores: when
        // the FILE header's SPE count is the corrupt field, the blocks
        // (whose checksums still pass) are the ground truth.
        bool ok = plausibleBlockHeader(bh, capacity) &&
                  bh.first_record >= next_ordinal &&
                  pos + sizeof(BlockHeader) + body_len <= walk_end;
        if (ok) {
            try {
                decodeBlockBody(bh, data + pos + sizeof(BlockHeader),
                                static_cast<std::size_t>(body_len), capacity,
                                blk);
            } catch (const std::runtime_error& e) {
                note(rep, std::string(e.what()) + "; block dropped");
                ok = false;
            }
        }
        if (!ok) {
            // Resynchronize: scan byte-by-byte for the next block magic.
            std::uint64_t next = pos + 1;
            for (; next + sizeof(BlockHeader) <= walk_end; ++next) {
                std::uint32_t m;
                std::memcpy(&m, data + next, sizeof(m));
                if (m == kBlockMagic)
                    break;
            }
            pos = next;
            continue;
        }

        if (bh.first_record > next_ordinal) {
            const std::uint64_t lost = bh.first_record - next_ordinal;
            rep.records_skipped += lost;
            note(rep, "block gap: records " + std::to_string(next_ordinal) +
                          ".." + std::to_string(bh.first_record - 1) + " (" +
                          std::to_string(lost) + ") lost; resynced from "
                          "block seeds");
            // Resynchronize each core from the good block's seeds:
            // restore the clock mapping a full decode would have had
            // (synthetic sync) and mark the loss (synthetic drop with
            // the exact per-core count) so post-gap events place
            // identically and the analyzer flags the gap.
            for (const BlockSeed& s : blk.seeds) {
                if (s.core >= n_cores)
                    continue;
                CoreSt& c = cores[s.core];
                const std::uint64_t lost_c =
                    s.records_before > c.decoded ? s.records_before - c.decoded
                                                 : 0;
                if ((s.flags & kSeedHaveSync) != 0 &&
                    (!c.have_sync || c.sync_raw != s.sync_raw ||
                     c.sync_tb != s.sync_tb)) {
                    Record sync{};
                    sync.kind = kSyncRecord;
                    sync.core = s.core;
                    sync.timestamp = s.sync_raw;
                    sync.a = s.sync_raw;
                    sync.b = s.sync_tb;
                    raw.push_back(sync);
                    c.have_sync = true;
                    c.sync_raw = s.sync_raw;
                    c.sync_tb = s.sync_tb;
                }
                if (lost_c > 0 && c.have_sync) {
                    // Place the marker at the seed tick when it is
                    // representable from the mapping; the analyzer's
                    // monotonic clamp absorbs any shortfall.
                    const std::uint64_t delta =
                        s.tick >= s.sync_tb &&
                                s.tick - s.sync_tb <= 0xFFFFFFFFULL
                            ? s.tick - s.sync_tb
                            : 0;
                    Record drop{};
                    drop.kind = kDropRecord;
                    drop.core = s.core;
                    drop.timestamp =
                        s.core != 0
                            ? c.sync_raw - static_cast<std::uint32_t>(delta)
                            : c.sync_raw + static_cast<std::uint32_t>(delta);
                    drop.a = lost_c;
                    drop.b = c.cum_dropped += lost_c;
                    raw.push_back(drop);
                }
                if (lost_c > 0)
                    c.decoded = s.records_before;
            }
        }

        for (const Record& r : blk.records) {
            raw.push_back(r);
            if (r.core >= n_cores)
                continue;
            CoreSt& c = cores[r.core];
            c.decoded += 1;
            if (r.kind == kSyncRecord) {
                c.have_sync = true;
                c.sync_raw = static_cast<std::uint32_t>(r.a);
                c.sync_tb = r.b;
            } else if (r.kind == kDropRecord) {
                c.cum_dropped = r.b;
            }
        }
        next_ordinal = bh.first_record + bh.record_count;
        good_bytes += sizeof(BlockHeader) + body_len;
        pos += sizeof(BlockHeader) + body_len;
    }

    if (rh_ok && rh.record_count > next_ordinal) {
        const std::uint64_t lost = rh.record_count - next_ordinal;
        rep.records_skipped += lost;
        note(rep, "trailing blocks lost: records " +
                      std::to_string(next_ordinal) + ".." +
                      std::to_string(rh.record_count - 1) + " (" +
                      std::to_string(lost) + ")");
    }
    const std::uint64_t walked = walk_end - sizeof(BlockRegionHeader);
    if (walked > good_bytes)
        rep.bytes_dropped += walked - good_bytes;
}

// -------------------------------------------------------------------------
// Streaming reader

BlockReader::BlockReader(std::istream& is) : is_(is)
{
    std::uint64_t at = 0;
    const auto base = is_.tellg();
    if (base != std::streampos(-1))
        at = static_cast<std::uint64_t>(base);
    is_.clear();

    readExact(is_, &header_, sizeof(header_), "file header");
    at += sizeof(header_);
    if (header_.magic != kMagic)
        throw std::runtime_error(
            "trace::BlockReader: bad magic (not a PDT trace)");
    if (header_.version != kFormatVersionV3)
        throw std::runtime_error(
            "trace::BlockReader: not a v3 compressed trace (version " +
            std::to_string(header_.version) + ")");

    names_.resize(header_.num_spes);
    for (std::string& name : names_) {
        std::uint32_t nlen = 0;
        readExact(is_, &nlen, sizeof(nlen), "name table");
        if (nlen > (1u << 20))
            throw std::runtime_error(
                "trace::BlockReader: implausible name length " +
                std::to_string(nlen));
        name.resize(nlen);
        readExact(is_, name.data(), nlen, "name table");
        at += sizeof(nlen) + nlen;
    }

    region_offset_ = at;
    readExact(is_, &region_, sizeof(region_), "block region header");
    if (!plausibleRegionHeader(region_) ||
        region_.record_count != header_.record_count)
        throw std::runtime_error(
            "trace::BlockReader: corrupt block region header");
    next_offset_ = at + sizeof(region_);
    header_.version = kFormatVersion; // decode is transparent
}

bool
BlockReader::next(DecodedBlock& out)
{
    if (next_block_ >= region_.block_count)
        return false;

    // Re-seek when possible so next() composes with readBlock(); a
    // non-seekable stream is simply assumed still in sequence.
    is_.clear();
    const auto pos = is_.tellg();
    if (pos != std::streampos(-1) &&
        static_cast<std::uint64_t>(pos) != next_offset_)
        is_.seekg(static_cast<std::streamoff>(next_offset_));

    BlockHeader bh;
    readExact(is_, &bh, sizeof(bh), "block header");
    if (!plausibleBlockHeader(bh, region_.block_capacity) ||
        bh.first_record != next_first_)
        throw std::runtime_error(
            "trace::BlockReader: corrupt block header at block " +
            std::to_string(next_block_));
    const std::uint64_t expect = std::min<std::uint64_t>(
        region_.block_capacity, region_.record_count - next_first_);
    if (bh.record_count != expect)
        throw std::runtime_error(
            "trace::BlockReader: block " + std::to_string(next_block_) +
            " claims " + std::to_string(bh.record_count) + " records, " +
            std::to_string(expect) + " expected");

    const std::size_t body_len =
        static_cast<std::size_t>(bh.seed_count) * sizeof(BlockSeed) +
        bh.payload_size;
    std::vector<std::uint8_t> body(body_len);
    readExact(is_, body.data(), body_len, "block body");
    decodeBlockBody(bh, body.data(), body_len, region_.block_capacity, out);

    next_offset_ += sizeof(bh) + body_len;
    next_first_ += bh.record_count;
    next_block_ += 1;
    return true;
}

const std::vector<BlockDirEntry>&
BlockReader::directory()
{
    if (!have_directory_) {
        directory_ = loadBlockDirectory(is_, region_offset_, region_);
        have_directory_ = true;
    }
    return directory_;
}

void
BlockReader::readBlock(std::uint64_t index, DecodedBlock& out)
{
    const std::vector<BlockDirEntry>& dir = directory();
    if (index >= dir.size())
        throw std::runtime_error("trace::BlockReader: block index " +
                                 std::to_string(index) + " out of range");
    const BlockDirEntry& de = dir[index];
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(de.offset));
    BlockHeader bh;
    readExact(is_, &bh, sizeof(bh), "block header");
    if (bh.record_count != de.record_count ||
        sizeof(bh) + static_cast<std::uint64_t>(bh.seed_count) *
                         sizeof(BlockSeed) +
            bh.payload_size !=
            de.block_bytes)
        throw std::runtime_error(
            "trace::BlockReader: block disagrees with the directory at "
            "block " +
            std::to_string(index));
    const std::size_t body_len = de.block_bytes - sizeof(bh);
    std::vector<std::uint8_t> body(body_len);
    readExact(is_, body.data(), body_len, "block body");
    decodeBlockBody(bh, body.data(), body_len, region_.block_capacity, out);
}

// -------------------------------------------------------------------------
// Directory loading

std::vector<BlockDirEntry>
loadBlockDirectory(std::istream& is, std::uint64_t region_offset,
                   const BlockRegionHeader& region)
{
    const auto saved = is.tellg();
    if (saved == std::streampos(-1)) {
        is.clear();
        throw std::runtime_error(
            "trace::block: directory access needs a seekable stream");
    }
    const std::uint64_t first_block =
        region_offset + sizeof(BlockRegionHeader);

    // Primary path: the committed directory, fully validated.
    auto tryDirectory = [&]() -> std::vector<BlockDirEntry> {
        std::vector<BlockDirEntry> dir(
            static_cast<std::size_t>(region.block_count));
        is.clear();
        is.seekg(static_cast<std::streamoff>(region.directory_offset));
        if (!dir.empty()) {
            is.read(reinterpret_cast<char*>(dir.data()),
                    static_cast<std::streamsize>(dir.size() *
                                                 sizeof(BlockDirEntry)));
        }
        BlockDirTrailer tr;
        is.read(reinterpret_cast<char*>(&tr),
                static_cast<std::streamsize>(sizeof(tr)));
        if (!is)
            throw std::runtime_error("trace::block: directory unreadable");
        if (tr.magic != kBlockRegionMagic ||
            tr.dir_bytes != dir.size() * sizeof(BlockDirEntry) ||
            fnv1a64Bytes(dir.data(),
                         static_cast<std::size_t>(tr.dir_bytes)) !=
                tr.checksum)
            throw std::runtime_error("trace::block: directory corrupt");

        std::uint64_t expect_off = first_block;
        std::uint64_t records = 0;
        for (std::size_t i = 0; i < dir.size(); ++i) {
            const BlockDirEntry& de = dir[i];
            const std::uint64_t expect_count = std::min<std::uint64_t>(
                region.block_capacity, region.record_count - records);
            if (de.offset != expect_off ||
                de.block_bytes < sizeof(BlockHeader) ||
                de.record_count != expect_count)
                throw std::runtime_error(
                    "trace::block: directory entries inconsistent");
            expect_off += de.block_bytes;
            records += de.record_count;
        }
        if (records != region.record_count ||
            expect_off != region.directory_offset)
            throw std::runtime_error(
                "trace::block: directory does not cover the region");
        return dir;
    };

    // Fallback: rebuild the directory by walking the block headers —
    // the blocks are self-describing, so a damaged directory does not
    // take the parallel readers down with it.
    auto walkBlocks = [&]() -> std::vector<BlockDirEntry> {
        std::vector<BlockDirEntry> dir;
        dir.reserve(static_cast<std::size_t>(region.block_count));
        std::uint64_t off = first_block;
        std::uint64_t records = 0;
        for (std::uint64_t i = 0; i < region.block_count; ++i) {
            is.clear();
            is.seekg(static_cast<std::streamoff>(off));
            BlockHeader bh;
            readExact(is, &bh, sizeof(bh), "block header");
            if (!plausibleBlockHeader(bh, region.block_capacity) ||
                bh.first_record != records)
                throw std::runtime_error(
                    "trace::block: corrupt block header at block " +
                    std::to_string(i) + " while rebuilding the directory");
            BlockDirEntry de;
            de.offset = off;
            de.block_bytes = static_cast<std::uint32_t>(
                sizeof(BlockHeader) +
                static_cast<std::uint64_t>(bh.seed_count) *
                    sizeof(BlockSeed) +
                bh.payload_size);
            de.record_count = bh.record_count;
            dir.push_back(de);
            off += de.block_bytes;
            records += bh.record_count;
        }
        if (records != region.record_count)
            throw std::runtime_error(
                "trace::block: walked blocks do not cover the region");
        return dir;
    };

    std::vector<BlockDirEntry> dir;
    try {
        dir = tryDirectory();
    } catch (const std::runtime_error&) {
        dir = walkBlocks(); // throws if the blocks are damaged too
    }
    is.clear();
    is.seekg(saved);
    return dir;
}

// -------------------------------------------------------------------------
// Probe

BlockRegionProbe
probeBlockRegion(std::istream& is)
{
    BlockRegionProbe probe;
    const auto saved = is.tellg();
    try {
        Header fh;
        readExact(is, &fh, sizeof(fh), "file header");
        if (fh.magic != kMagic || fh.version != kFormatVersionV3)
            throw std::runtime_error("not v3");
        for (std::uint32_t i = 0; i < fh.num_spes; ++i) {
            std::uint32_t nlen = 0;
            readExact(is, &nlen, sizeof(nlen), "name table");
            if (nlen > (1u << 20))
                throw std::runtime_error("bad name");
            is.seekg(static_cast<std::streamoff>(nlen), std::ios::cur);
            if (!is)
                throw std::runtime_error("bad name table");
        }
        const auto region_pos = is.tellg();
        BlockRegionHeader rh;
        readExact(is, &rh, sizeof(rh), "block region header");
        if (!plausibleRegionHeader(rh) || rh.record_count != fh.record_count)
            throw std::runtime_error("bad region header");
        probe.present = true;
        probe.region = rh;
        if (region_pos != std::streampos(-1)) {
            probe.region_bytes =
                rh.directory_offset +
                rh.block_count * sizeof(BlockDirEntry) +
                sizeof(BlockDirTrailer) -
                static_cast<std::uint64_t>(region_pos);
        }
    } catch (const std::exception&) {
        probe = BlockRegionProbe{};
    }
    is.clear();
    if (saved != std::streampos(-1))
        is.seekg(saved);
    return probe;
}

BlockRegionProbe
probeBlockRegionFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return {};
    return probeBlockRegion(is);
}

} // namespace cell::trace
