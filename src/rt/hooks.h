/**
 * @file
 * Instrumentation hook interface between the runtime and PDT.
 *
 * The real PDT worked by relinking applications against instrumented
 * versions of the SDK libraries (libspe on the PPE, the spu runtime on
 * the SPU): every interesting API call gained a prologue/epilogue that
 * recorded a trace event. This runtime reproduces that architecture:
 * every rt:: API call emits a Begin and an End ApiEvent to an optional
 * ApiHook. With no hook installed the calls cost nothing — that is the
 * untraced baseline against which tracing overhead is measured.
 *
 * The hook methods are awaitable (CoTask) because recording an event
 * *takes simulated time* on the core that records it — per-event cost,
 * plus occasionally a buffer-flush DMA. Charging that time inside the
 * hook is what makes the paper's overhead evaluation reproducible.
 */

#ifndef CELL_RT_HOOKS_H
#define CELL_RT_HOOKS_H

#include <cstdint>

#include "sim/coro.h"
#include "sim/types.h"

namespace cell::rt {

/** Every instrumented runtime operation. */
enum class ApiOp : std::uint8_t
{
    // SPU-side MFC commands
    SpuMfcGet,
    SpuMfcGetFence,
    SpuMfcGetBarrier,
    SpuMfcPut,
    SpuMfcPutFence,
    SpuMfcPutBarrier,
    SpuMfcGetList,
    SpuMfcPutList,
    SpuListStallAck,
    // SPU-side synchronization
    SpuTagWaitAny,
    SpuTagWaitAll,
    // SPU-side mailboxes / signals
    SpuMboxRead,     ///< read inbound mailbox (blocking)
    SpuMboxWrite,    ///< write outbound mailbox (blocking when full)
    SpuMboxIrqWrite, ///< write outbound-interrupt mailbox
    SpuSignalRead1,
    SpuSignalRead2,
    SpuSendSignal, ///< sndsig to another SPE's signal register
    // SPU lifecycle / misc
    SpuStart,
    SpuStop,
    SpuDecrRead,
    SpuDecrWrite,
    SpuUserEvent,
    // PPE-side
    PpeContextCreate,
    PpeContextRun,
    PpeContextJoin,
    PpeMboxWrite,   ///< write an SPE's inbound mailbox
    PpeMboxRead,    ///< read an SPE's outbound mailbox
    PpeMboxIrqRead, ///< read an SPE's outbound-interrupt mailbox
    PpeSignalPost,
    PpeProxyGet,
    PpeProxyPut,
    PpeProxyTagWait,
    PpeUserEvent,

    kCount, ///< sentinel
};

constexpr std::size_t kNumApiOps = static_cast<std::size_t>(ApiOp::kCount);

/** Printable mnemonic, e.g. "SPU_MFC_GET". */
const char* apiOpName(ApiOp op);

/** Event groups for runtime filtering (PDT configuration unit). */
enum class ApiGroup : std::uint8_t
{
    Lifecycle,
    Dma,
    DmaWait,
    Mailbox,
    Signal,
    Decrementer,
    User,

    kCount,
};

constexpr std::size_t kNumApiGroups = static_cast<std::size_t>(ApiGroup::kCount);

/** Printable group name ("DMA", "MAILBOX", ...). */
const char* apiGroupName(ApiGroup g);

/** Which group an operation belongs to. */
ApiGroup apiOpGroup(ApiOp op);

/** Begin/End marker. */
enum class ApiPhase : std::uint8_t
{
    Begin,
    End,
};

/**
 * One instrumentation callout. The meaning of a..d depends on op:
 *
 *   MFC commands:      a=LS address, b=EA, c=size, d=tag
 *   tag waits:         a=mask; End: b=completed mask
 *   mailbox/signal:    a=value (End for reads, Begin for writes)
 *   context ops:       a=SPE index
 *   user events:       a=user event id, b=user payload
 *   decrementer:       a=value
 *   SpuStop:           a=exit code
 */
struct ApiEvent
{
    ApiOp op = ApiOp::SpuUserEvent;
    ApiPhase phase = ApiPhase::Begin;
    sim::CoreId core;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint64_t d = 0;
};

/**
 * Observer installed by a tool (PDT). Awaitable so the observer can
 * charge recording cost and perform flush DMA on the observed core's
 * timeline.
 */
class ApiHook
{
  public:
    virtual ~ApiHook() = default;

    /** Called around every instrumented runtime operation. */
    virtual sim::CoTask<void> onApiEvent(const ApiEvent& ev) = 0;
};

/**
 * Awaitable returned by the runtime's emit helpers.
 *
 * With no hook installed (the untraced baseline) it is ready
 * immediately: no coroutine frame is allocated and co_await falls
 * straight through — instrumentation callouts really do cost nothing.
 * With a hook it wraps the CoTask that charges recording time.
 */
class HookAwait
{
  public:
    /** No hook: awaiting completes synchronously, allocation-free. */
    HookAwait() = default;

    /** Hook installed: await the wrapped emission coroutine. */
    explicit HookAwait(sim::CoTask<void> task)
        : task_(std::move(task)), active_(true)
    {}

    bool await_ready() const noexcept { return !active_; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller)
    {
        return task_.await_suspend(caller);
    }
    void await_resume()
    {
        if (active_)
            task_.await_resume();
    }

  private:
    sim::CoTask<void> task_;
    bool active_ = false;
};

} // namespace cell::rt

#endif // CELL_RT_HOOKS_H
