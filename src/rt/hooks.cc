/**
 * @file
 * Names and group mapping for instrumented operations.
 */

#include "rt/hooks.h"

namespace cell::rt {

const char*
apiOpName(ApiOp op)
{
    switch (op) {
      case ApiOp::SpuMfcGet: return "SPU_MFC_GET";
      case ApiOp::SpuMfcGetFence: return "SPU_MFC_GETF";
      case ApiOp::SpuMfcGetBarrier: return "SPU_MFC_GETB";
      case ApiOp::SpuMfcPut: return "SPU_MFC_PUT";
      case ApiOp::SpuMfcPutFence: return "SPU_MFC_PUTF";
      case ApiOp::SpuMfcPutBarrier: return "SPU_MFC_PUTB";
      case ApiOp::SpuMfcGetList: return "SPU_MFC_GETL";
      case ApiOp::SpuMfcPutList: return "SPU_MFC_PUTL";
      case ApiOp::SpuListStallAck: return "SPU_LIST_STALL_ACK";
      case ApiOp::SpuTagWaitAny: return "SPU_TAG_WAIT_ANY";
      case ApiOp::SpuTagWaitAll: return "SPU_TAG_WAIT_ALL";
      case ApiOp::SpuMboxRead: return "SPU_MBOX_READ";
      case ApiOp::SpuMboxWrite: return "SPU_MBOX_WRITE";
      case ApiOp::SpuMboxIrqWrite: return "SPU_MBOX_IRQ_WRITE";
      case ApiOp::SpuSignalRead1: return "SPU_SIGNAL_READ1";
      case ApiOp::SpuSignalRead2: return "SPU_SIGNAL_READ2";
      case ApiOp::SpuSendSignal: return "SPU_SEND_SIGNAL";
      case ApiOp::SpuStart: return "SPU_START";
      case ApiOp::SpuStop: return "SPU_STOP";
      case ApiOp::SpuDecrRead: return "SPU_DECR_READ";
      case ApiOp::SpuDecrWrite: return "SPU_DECR_WRITE";
      case ApiOp::SpuUserEvent: return "SPU_USER_EVENT";
      case ApiOp::PpeContextCreate: return "PPE_CONTEXT_CREATE";
      case ApiOp::PpeContextRun: return "PPE_CONTEXT_RUN";
      case ApiOp::PpeContextJoin: return "PPE_CONTEXT_JOIN";
      case ApiOp::PpeMboxWrite: return "PPE_MBOX_WRITE";
      case ApiOp::PpeMboxRead: return "PPE_MBOX_READ";
      case ApiOp::PpeMboxIrqRead: return "PPE_MBOX_IRQ_READ";
      case ApiOp::PpeSignalPost: return "PPE_SIGNAL_POST";
      case ApiOp::PpeProxyGet: return "PPE_PROXY_GET";
      case ApiOp::PpeProxyPut: return "PPE_PROXY_PUT";
      case ApiOp::PpeProxyTagWait: return "PPE_PROXY_TAG_WAIT";
      case ApiOp::PpeUserEvent: return "PPE_USER_EVENT";
      case ApiOp::kCount: break;
    }
    return "UNKNOWN";
}

const char*
apiGroupName(ApiGroup g)
{
    switch (g) {
      case ApiGroup::Lifecycle: return "LIFECYCLE";
      case ApiGroup::Dma: return "DMA";
      case ApiGroup::DmaWait: return "DMA_WAIT";
      case ApiGroup::Mailbox: return "MAILBOX";
      case ApiGroup::Signal: return "SIGNAL";
      case ApiGroup::Decrementer: return "DECREMENTER";
      case ApiGroup::User: return "USER";
      case ApiGroup::kCount: break;
    }
    return "UNKNOWN";
}

ApiGroup
apiOpGroup(ApiOp op)
{
    switch (op) {
      case ApiOp::SpuMfcGet:
      case ApiOp::SpuMfcGetFence:
      case ApiOp::SpuMfcGetBarrier:
      case ApiOp::SpuMfcPut:
      case ApiOp::SpuMfcPutFence:
      case ApiOp::SpuMfcPutBarrier:
      case ApiOp::SpuMfcGetList:
      case ApiOp::SpuMfcPutList:
      case ApiOp::SpuListStallAck:
      case ApiOp::PpeProxyGet:
      case ApiOp::PpeProxyPut:
        return ApiGroup::Dma;
      case ApiOp::SpuTagWaitAny:
      case ApiOp::SpuTagWaitAll:
      case ApiOp::PpeProxyTagWait:
        return ApiGroup::DmaWait;
      case ApiOp::SpuMboxRead:
      case ApiOp::SpuMboxWrite:
      case ApiOp::SpuMboxIrqWrite:
      case ApiOp::PpeMboxWrite:
      case ApiOp::PpeMboxRead:
      case ApiOp::PpeMboxIrqRead:
        return ApiGroup::Mailbox;
      case ApiOp::SpuSignalRead1:
      case ApiOp::SpuSignalRead2:
      case ApiOp::SpuSendSignal:
      case ApiOp::PpeSignalPost:
        return ApiGroup::Signal;
      case ApiOp::SpuDecrRead:
      case ApiOp::SpuDecrWrite:
        return ApiGroup::Decrementer;
      case ApiOp::SpuUserEvent:
      case ApiOp::PpeUserEvent:
        return ApiGroup::User;
      case ApiOp::SpuStart:
      case ApiOp::SpuStop:
      case ApiOp::PpeContextCreate:
      case ApiOp::PpeContextRun:
      case ApiOp::PpeContextJoin:
      case ApiOp::kCount:
        return ApiGroup::Lifecycle;
    }
    return ApiGroup::Lifecycle;
}

} // namespace cell::rt
