/**
 * @file
 * SPU environment implementation: cost charging, stall attribution,
 * and instrumentation callouts for every runtime operation.
 */

#include "rt/spu_env.h"

#include <new>

namespace cell::rt {

using sim::MfcCommand;
using sim::MfcOpcode;
using sim::SpuStallKind;
using sim::Tick;

SpuEnv::SpuEnv(sim::Machine& machine, sim::Spu& spu, ApiHook* hook,
               std::uint64_t argp, std::uint64_t envp,
               std::uint32_t code_size, std::uint32_t ls_limit)
    : machine_(machine), spu_(spu), hook_(hook), argp_(argp), envp_(envp),
      ls_cursor_(code_size), ls_limit_(ls_limit)
{}

LsAddr
SpuEnv::lsAlloc(std::uint32_t size, std::uint32_t align)
{
    const std::uint32_t base = (ls_cursor_ + align - 1) / align * align;
    if (base + size > ls_limit_)
        throw std::bad_alloc();
    ls_cursor_ = base + size;
    return base;
}

CoTask<void>
SpuEnv::emitSlow(ApiOp op, ApiPhase phase, std::uint64_t a, std::uint64_t b,
                 std::uint64_t c, std::uint64_t d)
{
    ApiEvent ev{op, phase, spu_.coreId(), a, b, c, d};
    co_await hook_->onApiEvent(ev);
}

CoTask<void>
SpuEnv::injectStall(sim::FaultSite site)
{
    const sim::TickDelta d = machine_.faults().delayAt(site, spu_.index());
    if (d > 0)
        co_await spu_.engine().delay(d);
}

CoTask<void>
SpuEnv::dmaCommand(ApiOp op, MfcOpcode mfc_op, bool fence, bool barrier,
                   LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag,
                   LsAddr list_ls)
{
    co_await emit(op, ApiPhase::Begin, ls, ea, size, tag);
    co_await spu_.chargeChannel();

    MfcCommand cmd;
    cmd.op = mfc_op;
    cmd.ls = ls;
    cmd.ea = ea;
    cmd.size = size;
    cmd.tag = tag;
    cmd.fence = fence;
    cmd.barrier = barrier;
    cmd.list_ls = list_ls;

    const Tick t0 = spu_.engine().now();
    co_await spu_.mfc().enqueueSpu(cmd);
    spu_.stats().addStall(SpuStallKind::QueueWait, spu_.engine().now() - t0);

    co_await emit(op, ApiPhase::End, ls, ea, size, tag);
}

CoTask<void>
SpuEnv::mfcGet(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    return dmaCommand(ApiOp::SpuMfcGet, MfcOpcode::Get, false, false, ls, ea,
                      size, tag, 0);
}

CoTask<void>
SpuEnv::mfcGetf(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    return dmaCommand(ApiOp::SpuMfcGetFence, MfcOpcode::Get, true, false, ls,
                      ea, size, tag, 0);
}

CoTask<void>
SpuEnv::mfcGetb(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    return dmaCommand(ApiOp::SpuMfcGetBarrier, MfcOpcode::Get, false, true,
                      ls, ea, size, tag, 0);
}

CoTask<void>
SpuEnv::mfcPut(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    return dmaCommand(ApiOp::SpuMfcPut, MfcOpcode::Put, false, false, ls, ea,
                      size, tag, 0);
}

CoTask<void>
SpuEnv::mfcPutf(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    return dmaCommand(ApiOp::SpuMfcPutFence, MfcOpcode::Put, true, false, ls,
                      ea, size, tag, 0);
}

CoTask<void>
SpuEnv::mfcPutb(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    return dmaCommand(ApiOp::SpuMfcPutBarrier, MfcOpcode::Put, false, true,
                      ls, ea, size, tag, 0);
}

CoTask<void>
SpuEnv::mfcGetList(LsAddr ls, EffAddr ea, LsAddr list_ls,
                   std::uint32_t list_bytes, TagId tag)
{
    return dmaCommand(ApiOp::SpuMfcGetList, MfcOpcode::GetList, false, false,
                      ls, ea, list_bytes, tag, list_ls);
}

CoTask<void>
SpuEnv::mfcPutList(LsAddr ls, EffAddr ea, LsAddr list_ls,
                   std::uint32_t list_bytes, TagId tag)
{
    return dmaCommand(ApiOp::SpuMfcPutList, MfcOpcode::PutList, false, false,
                      ls, ea, list_bytes, tag, list_ls);
}

CoTask<void>
SpuEnv::listStallAck(TagId tag)
{
    co_await emit(ApiOp::SpuListStallAck, ApiPhase::Begin, tag);
    co_await spu_.chargeChannel();
    spu_.mfc().ackListStall(tag);
}

CoTask<void>
SpuEnv::getLarge(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    while (size > 0) {
        const std::uint32_t chunk =
            std::min<std::uint32_t>(size, sim::kMaxDmaSize);
        co_await mfcGet(ls, ea, chunk, tag);
        ls += chunk;
        ea += chunk;
        size -= chunk;
    }
}

CoTask<void>
SpuEnv::getLargef(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    while (size > 0) {
        const std::uint32_t chunk =
            std::min<std::uint32_t>(size, sim::kMaxDmaSize);
        co_await mfcGetf(ls, ea, chunk, tag);
        ls += chunk;
        ea += chunk;
        size -= chunk;
    }
}

CoTask<void>
SpuEnv::putLarge(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    while (size > 0) {
        const std::uint32_t chunk =
            std::min<std::uint32_t>(size, sim::kMaxDmaSize);
        co_await mfcPut(ls, ea, chunk, tag);
        ls += chunk;
        ea += chunk;
        size -= chunk;
    }
}

CoTask<TagMask>
SpuEnv::waitTagAll(TagMask mask)
{
    co_await emit(ApiOp::SpuTagWaitAll, ApiPhase::Begin, mask);
    co_await spu_.chargeChannel();
    const Tick t0 = spu_.engine().now();
    const TagMask done = co_await spu_.mfc().waitTagStatusAll(mask);
    spu_.stats().addStall(SpuStallKind::DmaWait, spu_.engine().now() - t0);
    co_await emit(ApiOp::SpuTagWaitAll, ApiPhase::End, mask, done);
    co_return done;
}

CoTask<TagMask>
SpuEnv::waitTagAny(TagMask mask)
{
    co_await emit(ApiOp::SpuTagWaitAny, ApiPhase::Begin, mask);
    co_await spu_.chargeChannel();
    const Tick t0 = spu_.engine().now();
    const TagMask done = co_await spu_.mfc().waitTagStatusAny(mask);
    spu_.stats().addStall(SpuStallKind::DmaWait, spu_.engine().now() - t0);
    co_await emit(ApiOp::SpuTagWaitAny, ApiPhase::End, mask, done);
    co_return done;
}

CoTask<std::uint32_t>
SpuEnv::readInMbox()
{
    co_await emit(ApiOp::SpuMboxRead, ApiPhase::Begin);
    co_await spu_.chargeChannel();
    const Tick t0 = spu_.engine().now();
    if (machine_.faults().enabled())
        co_await injectStall(sim::FaultSite::Mailbox);
    const std::uint32_t v = co_await spu_.inbound().pop();
    spu_.stats().addStall(SpuStallKind::MailboxWait, spu_.engine().now() - t0);
    co_await emit(ApiOp::SpuMboxRead, ApiPhase::End, v);
    co_return v;
}

CoTask<void>
SpuEnv::writeOutMbox(std::uint32_t value)
{
    co_await emit(ApiOp::SpuMboxWrite, ApiPhase::Begin, value);
    co_await spu_.chargeChannel();
    const Tick t0 = spu_.engine().now();
    if (machine_.faults().enabled())
        co_await injectStall(sim::FaultSite::Mailbox);
    co_await spu_.outbound().push(value);
    spu_.stats().addStall(SpuStallKind::MailboxWait, spu_.engine().now() - t0);
    co_await emit(ApiOp::SpuMboxWrite, ApiPhase::End, value);
}

CoTask<void>
SpuEnv::writeOutIrqMbox(std::uint32_t value)
{
    co_await emit(ApiOp::SpuMboxIrqWrite, ApiPhase::Begin, value);
    co_await spu_.chargeChannel();
    const Tick t0 = spu_.engine().now();
    if (machine_.faults().enabled())
        co_await injectStall(sim::FaultSite::Mailbox);
    co_await spu_.outboundIrq().push(value);
    spu_.stats().addStall(SpuStallKind::MailboxWait, spu_.engine().now() - t0);
    co_await emit(ApiOp::SpuMboxIrqWrite, ApiPhase::End, value);
}

CoTask<std::uint32_t>
SpuEnv::readSignal1()
{
    co_await emit(ApiOp::SpuSignalRead1, ApiPhase::Begin);
    co_await spu_.chargeChannel();
    const Tick t0 = spu_.engine().now();
    if (machine_.faults().enabled())
        co_await injectStall(sim::FaultSite::Signal);
    const std::uint32_t v = co_await spu_.signal1().read();
    spu_.stats().addStall(SpuStallKind::SignalWait, spu_.engine().now() - t0);
    co_await emit(ApiOp::SpuSignalRead1, ApiPhase::End, v);
    co_return v;
}

CoTask<std::uint32_t>
SpuEnv::readSignal2()
{
    co_await emit(ApiOp::SpuSignalRead2, ApiPhase::Begin);
    co_await spu_.chargeChannel();
    const Tick t0 = spu_.engine().now();
    if (machine_.faults().enabled())
        co_await injectStall(sim::FaultSite::Signal);
    const std::uint32_t v = co_await spu_.signal2().read();
    spu_.stats().addStall(SpuStallKind::SignalWait, spu_.engine().now() - t0);
    co_await emit(ApiOp::SpuSignalRead2, ApiPhase::End, v);
    co_return v;
}

CoTask<std::uint32_t>
SpuEnv::readDecrementer()
{
    co_await spu_.chargeChannel();
    const std::uint32_t v = spu_.decrementer().read(spu_.engine().now());
    co_await emit(ApiOp::SpuDecrRead, ApiPhase::Begin, v);
    co_return v;
}

CoTask<void>
SpuEnv::writeDecrementer(std::uint32_t value)
{
    co_await spu_.chargeChannel();
    spu_.decrementer().write(spu_.engine().now(), value);
    co_await emit(ApiOp::SpuDecrWrite, ApiPhase::Begin, value);
}

CoTask<void>
SpuEnv::sendSignal(std::uint32_t target_spe, std::uint32_t which,
                   std::uint32_t bits)
{
    if (target_spe >= machine_.numSpes())
        throw std::out_of_range("sendSignal: bad target SPE");
    if (which != 1 && which != 2)
        throw std::invalid_argument("sendSignal: which must be 1 or 2");
    co_await emit(ApiOp::SpuSendSignal, ApiPhase::Begin, bits, target_spe,
                  which);
    // sndsig is an MFC command; model its cost as a channel access
    // plus the EIB command latency for the remote register write.
    co_await spu_.chargeChannel();
    co_await spu_.engine().delay(machine_.config().eib.command_latency);
    sim::Spu& target = machine_.spe(target_spe);
    if (which == 1)
        target.signal1().post(bits);
    else
        target.signal2().post(bits);
}


} // namespace cell::rt
