/**
 * @file
 * CellSystem: the runtime's top-level object (the "libspe2 process").
 *
 * Owns the simulated machine, a main-storage arena allocator, the SPE
 * contexts, and the instrumentation hook. Applications:
 *
 *   1. construct a CellSystem,
 *   2. (optionally) attach a tool hook — PDT does this,
 *   3. allocate main-storage buffers,
 *   4. spawn a PPE program that starts SPE contexts,
 *   5. call run() to simulate to completion.
 */

#ifndef CELL_RT_SYSTEM_H
#define CELL_RT_SYSTEM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rt/hooks.h"
#include "rt/spu_env.h"
#include "sim/machine.h"

namespace cell::rt {

class CellSystem;
class SpeContext;

/** An SPE program: name + coroutine body + modeled code footprint. */
struct SpuProgramImage
{
    std::string name = "spu_program";
    std::function<CoTask<void>(SpuEnv&)> main;
    /** LS bytes occupied by text+bss; data allocation starts above. */
    std::uint32_t code_size = 16 * 1024;
};

/** Stop information reported when an SPE program finishes. */
struct SpeStopInfo
{
    bool stopped = false;
    std::uint32_t exit_code = 0;
};

/**
 * PPE-side environment handed to the PPE program coroutine.
 */
class PpeEnv
{
  public:
    explicit PpeEnv(CellSystem& sys) : sys_(sys) {}

    CellSystem& system() { return sys_; }

    /** Charge @p cycles of PPE computation. */
    CoTask<void> compute(sim::TickDelta cycles);

    /** Read the 64-bit timebase register (charges the access cost). */
    CoTask<std::uint64_t> readTimebase();

    /** Record an application-defined PPE trace event.
     *  Free (no frame, no suspension) when untraced. */
    HookAwait userEvent(std::uint32_t id, std::uint64_t payload = 0);

  private:
    CellSystem& sys_;
};

/**
 * One SPE context (libspe2's spe_context_t): the PPE-side handle for
 * loading/running a program on one SPE and talking to its problem
 * state (mailboxes, signals, proxy DMA).
 *
 * All PPE-side operations are awaitable, charge MMIO cost, and emit
 * instrumentation events.
 */
class SpeContext
{
  public:
    SpeContext(CellSystem& sys, std::uint32_t spe_index);

    SpeContext(const SpeContext&) = delete;
    SpeContext& operator=(const SpeContext&) = delete;

    std::uint32_t speIndex() const { return index_; }
    sim::Spu& spu();

    /**
     * Load and start an SPE program (spe_context_run). Asynchronous:
     * returns once the program has been spawned.
     */
    CoTask<sim::ProcessRef> start(SpuProgramImage image,
                                  std::uint64_t argp = 0,
                                  std::uint64_t envp = 0);

    /** Wait for the SPE program to finish. */
    CoTask<void> join();

    bool running() const { return proc_.valid() && !proc_.done(); }
    const SpeStopInfo& stopInfo() const { return stop_info_; }

    /** @name PPE-side mailbox access (MMIO) */
    ///@{
    /** Write the SPE's inbound mailbox; blocks while it is full. */
    CoTask<void> writeInMbox(std::uint32_t value);
    /** Read the SPE's outbound mailbox; blocks while it is empty. */
    CoTask<std::uint32_t> readOutMbox();
    /** Read the SPE's outbound-interrupt mailbox (blocking). */
    CoTask<std::uint32_t> readOutIrqMbox();
    /** Entries currently in the outbound mailbox (status register). */
    std::size_t outMboxCount();
    ///@}

    /** @name Signal notification (MMIO writes) */
    ///@{
    CoTask<void> postSignal1(std::uint32_t bits);
    CoTask<void> postSignal2(std::uint32_t bits);
    ///@}

    /** @name Proxy DMA (PPE-initiated MFC commands) */
    ///@{
    CoTask<void> proxyGet(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    CoTask<void> proxyPut(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    CoTask<TagMask> proxyTagWait(TagMask mask);
    ///@}

  private:
    sim::Task spuThread(SpuProgramImage image, std::uint64_t argp,
                        std::uint64_t envp);
    /** Ready (frame-free) when no hook is installed. */
    HookAwait emitPpe(ApiOp op, ApiPhase phase, std::uint64_t a = 0,
                      std::uint64_t b = 0, std::uint64_t c = 0,
                      std::uint64_t d = 0);
    CoTask<void> emitPpeSlow(ApiOp op, ApiPhase phase, std::uint64_t a,
                             std::uint64_t b, std::uint64_t c,
                             std::uint64_t d);
    CoTask<void> chargeMmio();
    /** Injected PPE-side channel stall (no-op when faults are inert). */
    CoTask<void> injectPpeStall(sim::FaultSite site);

    CellSystem& sys_;
    std::uint32_t index_;
    sim::ProcessRef proc_;
    SpeStopInfo stop_info_;
};

/**
 * The runtime system object.
 */
class CellSystem
{
  public:
    explicit CellSystem(sim::MachineConfig cfg = {});

    CellSystem(const CellSystem&) = delete;
    CellSystem& operator=(const CellSystem&) = delete;

    sim::Machine& machine() { return machine_; }
    sim::Engine& engine() { return machine_.engine(); }
    const sim::MachineConfig& config() const { return machine_.config(); }
    std::uint32_t numSpes() const { return machine_.numSpes(); }

    /** Bump-allocate @p size bytes of main storage. Never freed. */
    EffAddr alloc(std::uint64_t size, std::uint64_t align = 128);

    /** Install (or clear) the instrumentation hook. */
    void setHook(ApiHook* hook) { hook_ = hook; }
    ApiHook* hook() { return hook_; }

    /**
     * First LS byte SPE programs must not allocate past; a tracer
     * lowers this to reserve space for its buffers.
     */
    void setSpuLsLimit(std::uint32_t limit) { spu_ls_limit_ = limit; }
    std::uint32_t spuLsLimit() const { return spu_ls_limit_; }

    /** The context for SPE @p index (created lazily, owned here). */
    SpeContext& context(std::uint32_t index);

    /** Spawn the PPE main program. */
    sim::ProcessRef runPpe(std::function<CoTask<void>(PpeEnv&)> main,
                           std::string name = "ppe_main");

    /** Simulate until quiescence. */
    void run() { machine_.run(); }

    /** Name of the program last started on SPE @p index ("" if none). */
    const std::string& programName(std::uint32_t index) const
    {
        return program_names_.at(index);
    }
    void noteProgramName(std::uint32_t index, std::string name)
    {
        program_names_.at(index) = std::move(name);
    }

  private:
    sim::Task ppeThread(std::function<CoTask<void>(PpeEnv&)> main);

    sim::Machine machine_;
    EffAddr arena_cursor_ = 0x1000'0000;
    ApiHook* hook_ = nullptr;
    std::uint32_t spu_ls_limit_ = sim::kLocalStoreSize;
    std::vector<std::unique_ptr<SpeContext>> contexts_;
    std::vector<std::string> program_names_;
};

} // namespace cell::rt

#endif // CELL_RT_SYSTEM_H
