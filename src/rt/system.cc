/**
 * @file
 * CellSystem, SpeContext and PpeEnv implementation.
 */

#include "rt/system.h"

#include <stdexcept>

namespace cell::rt {

using sim::ProcessRef;
using sim::Task;
using sim::Tick;

// ---------------------------------------------------------------- PpeEnv

CoTask<void>
PpeEnv::compute(sim::TickDelta cycles)
{
    sys_.machine().ppeStats().compute_cycles += cycles;
    co_await sys_.engine().delay(cycles);
}

CoTask<std::uint64_t>
PpeEnv::readTimebase()
{
    const auto cost = sys_.config().cost.ppe_timebase_read;
    sys_.machine().ppeStats().mmio_cycles += cost;
    co_await sys_.engine().delay(cost);
    co_return sys_.machine().readTimebase();
}

namespace {

CoTask<void>
ppeEmitSlow(ApiHook* hook, ApiOp op, ApiPhase phase, std::uint64_t a,
            std::uint64_t b, std::uint64_t c, std::uint64_t d)
{
    ApiEvent ev{op, phase, sim::CoreId::ppe(), a, b, c, d};
    co_await hook->onApiEvent(ev);
}

} // namespace

HookAwait
PpeEnv::userEvent(std::uint32_t id, std::uint64_t payload)
{
    ApiHook* hook = sys_.hook();
    if (!hook)
        return {};
    return HookAwait(
        ppeEmitSlow(hook, ApiOp::PpeUserEvent, ApiPhase::Begin, id, payload,
                    0, 0));
}

// ------------------------------------------------------------ SpeContext

SpeContext::SpeContext(CellSystem& sys, std::uint32_t spe_index)
    : sys_(sys), index_(spe_index)
{}

sim::Spu&
SpeContext::spu()
{
    return sys_.machine().spe(index_);
}

HookAwait
SpeContext::emitPpe(ApiOp op, ApiPhase phase, std::uint64_t a,
                    std::uint64_t b, std::uint64_t c, std::uint64_t d)
{
    ApiHook* hook = sys_.hook();
    if (!hook)
        return {};
    return HookAwait(emitPpeSlow(op, phase, a, b, c, d));
}

CoTask<void>
SpeContext::emitPpeSlow(ApiOp op, ApiPhase phase, std::uint64_t a,
                        std::uint64_t b, std::uint64_t c, std::uint64_t d)
{
    ApiEvent ev{op, phase, sim::CoreId::ppe(), a, b, c, d};
    co_await sys_.hook()->onApiEvent(ev);
}

CoTask<void>
SpeContext::chargeMmio()
{
    const auto cost = sys_.config().cost.ppe_mmio;
    sys_.machine().ppeStats().mmio_cycles += cost;
    co_await sys_.engine().delay(cost);
}

CoTask<void>
SpeContext::injectPpeStall(sim::FaultSite site)
{
    sim::FaultInjector& faults = sys_.machine().faults();
    if (faults.enabled()) {
        const sim::TickDelta d =
            faults.delayAt(site, sim::FaultInjector::kPpeActor);
        if (d > 0)
            co_await sys_.engine().delay(d);
    }
}

Task
SpeContext::spuThread(SpuProgramImage image, std::uint64_t argp,
                      std::uint64_t envp)
{
    sim::Spu& s = spu();
    SpuEnv env(sys_.machine(), s, sys_.hook(), argp, envp, image.code_size,
               sys_.spuLsLimit());
    s.stats().run_start = sys_.engine().now();
    co_await env.emit(ApiOp::SpuStart, ApiPhase::Begin, index_);
    co_await image.main(env);
    // The program body is over here; the stop event (and the tracer's
    // final buffer flush it triggers) is tool overhead past run_end.
    s.stats().run_end = sys_.engine().now();
    co_await env.emit(ApiOp::SpuStop, ApiPhase::Begin, env.exitCode());
    stop_info_ = SpeStopInfo{true, env.exitCode()};
}

CoTask<ProcessRef>
SpeContext::start(SpuProgramImage image, std::uint64_t argp,
                  std::uint64_t envp)
{
    if (!image.main)
        throw std::invalid_argument("SpeContext::start: empty program");
    if (running())
        throw std::logic_error("SpeContext::start: SPE already running");
    co_await emitPpe(ApiOp::PpeContextCreate, ApiPhase::Begin, index_);
    co_await emitPpe(ApiOp::PpeContextRun, ApiPhase::Begin, index_);
    co_await chargeMmio();
    sys_.noteProgramName(index_, image.name);
    proc_ = sys_.engine().spawn(
        spuThread(std::move(image), argp, envp),
        "spe" + std::to_string(index_));
    co_await emitPpe(ApiOp::PpeContextRun, ApiPhase::End, index_);
    co_return proc_;
}

CoTask<void>
SpeContext::join()
{
    co_await emitPpe(ApiOp::PpeContextJoin, ApiPhase::Begin, index_);
    const Tick t0 = sys_.engine().now();
    if (proc_.valid())
        co_await proc_.join();
    sys_.machine().ppeStats().wait_cycles += sys_.engine().now() - t0;
    co_await emitPpe(ApiOp::PpeContextJoin, ApiPhase::End, index_,
                     stop_info_.exit_code);
}

CoTask<void>
SpeContext::writeInMbox(std::uint32_t value)
{
    co_await emitPpe(ApiOp::PpeMboxWrite, ApiPhase::Begin, value, index_);
    co_await chargeMmio();
    const Tick t0 = sys_.engine().now();
    co_await injectPpeStall(sim::FaultSite::Mailbox);
    co_await spu().inbound().push(value);
    sys_.machine().ppeStats().wait_cycles += sys_.engine().now() - t0;
    co_await emitPpe(ApiOp::PpeMboxWrite, ApiPhase::End, value, index_);
}

CoTask<std::uint32_t>
SpeContext::readOutMbox()
{
    co_await emitPpe(ApiOp::PpeMboxRead, ApiPhase::Begin, 0, index_);
    co_await chargeMmio();
    const Tick t0 = sys_.engine().now();
    co_await injectPpeStall(sim::FaultSite::Mailbox);
    const std::uint32_t v = co_await spu().outbound().pop();
    sys_.machine().ppeStats().wait_cycles += sys_.engine().now() - t0;
    co_await emitPpe(ApiOp::PpeMboxRead, ApiPhase::End, v, index_);
    co_return v;
}

CoTask<std::uint32_t>
SpeContext::readOutIrqMbox()
{
    co_await emitPpe(ApiOp::PpeMboxIrqRead, ApiPhase::Begin, 0, index_);
    co_await chargeMmio();
    const Tick t0 = sys_.engine().now();
    co_await injectPpeStall(sim::FaultSite::Mailbox);
    const std::uint32_t v = co_await spu().outboundIrq().pop();
    sys_.machine().ppeStats().wait_cycles += sys_.engine().now() - t0;
    co_await emitPpe(ApiOp::PpeMboxIrqRead, ApiPhase::End, v, index_);
    co_return v;
}

std::size_t
SpeContext::outMboxCount()
{
    return spu().outbound().count();
}

CoTask<void>
SpeContext::postSignal1(std::uint32_t bits)
{
    co_await emitPpe(ApiOp::PpeSignalPost, ApiPhase::Begin, bits, index_, 1);
    co_await chargeMmio();
    co_await injectPpeStall(sim::FaultSite::Signal);
    spu().signal1().post(bits);
    co_await emitPpe(ApiOp::PpeSignalPost, ApiPhase::End, bits, index_, 1);
}

CoTask<void>
SpeContext::postSignal2(std::uint32_t bits)
{
    co_await emitPpe(ApiOp::PpeSignalPost, ApiPhase::Begin, bits, index_, 2);
    co_await chargeMmio();
    co_await injectPpeStall(sim::FaultSite::Signal);
    spu().signal2().post(bits);
    co_await emitPpe(ApiOp::PpeSignalPost, ApiPhase::End, bits, index_, 2);
}

CoTask<void>
SpeContext::proxyGet(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    co_await emitPpe(ApiOp::PpeProxyGet, ApiPhase::Begin, ls, ea, size, tag);
    co_await chargeMmio();
    sim::MfcCommand cmd;
    cmd.op = sim::MfcOpcode::Get;
    cmd.ls = ls;
    cmd.ea = ea;
    cmd.size = size;
    cmd.tag = tag;
    co_await spu().mfc().enqueueProxy(cmd);
    co_await emitPpe(ApiOp::PpeProxyGet, ApiPhase::End, ls, ea, size, tag);
}

CoTask<void>
SpeContext::proxyPut(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag)
{
    co_await emitPpe(ApiOp::PpeProxyPut, ApiPhase::Begin, ls, ea, size, tag);
    co_await chargeMmio();
    sim::MfcCommand cmd;
    cmd.op = sim::MfcOpcode::Put;
    cmd.ls = ls;
    cmd.ea = ea;
    cmd.size = size;
    cmd.tag = tag;
    co_await spu().mfc().enqueueProxy(cmd);
    co_await emitPpe(ApiOp::PpeProxyPut, ApiPhase::End, ls, ea, size, tag);
}

CoTask<TagMask>
SpeContext::proxyTagWait(TagMask mask)
{
    co_await emitPpe(ApiOp::PpeProxyTagWait, ApiPhase::Begin, mask);
    co_await chargeMmio();
    const Tick t0 = sys_.engine().now();
    const TagMask done = co_await spu().mfc().waitTagStatusAll(mask);
    sys_.machine().ppeStats().wait_cycles += sys_.engine().now() - t0;
    co_await emitPpe(ApiOp::PpeProxyTagWait, ApiPhase::End, mask, done);
    co_return done;
}

// ------------------------------------------------------------ CellSystem

CellSystem::CellSystem(sim::MachineConfig cfg)
    : machine_(cfg), program_names_(machine_.numSpes())
{
    contexts_.resize(machine_.numSpes());
}

EffAddr
CellSystem::alloc(std::uint64_t size, std::uint64_t align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        throw std::invalid_argument("CellSystem::alloc: align not a power of 2");
    arena_cursor_ = (arena_cursor_ + align - 1) & ~(align - 1);
    const EffAddr base = arena_cursor_;
    arena_cursor_ += size;
    if (machine_.config().eaIsLocalStore(base) ||
        machine_.config().eaIsLocalStore(arena_cursor_)) {
        throw std::runtime_error(
            "CellSystem::alloc: arena collided with LS apertures");
    }
    return base;
}

SpeContext&
CellSystem::context(std::uint32_t index)
{
    auto& slot = contexts_.at(index);
    if (!slot)
        slot = std::make_unique<SpeContext>(*this, index);
    return *slot;
}

Task
CellSystem::ppeThread(std::function<CoTask<void>(PpeEnv&)> main)
{
    PpeEnv env(*this);
    co_await main(env);
}

ProcessRef
CellSystem::runPpe(std::function<CoTask<void>(PpeEnv&)> main, std::string name)
{
    return engine().spawn(ppeThread(std::move(main)), std::move(name));
}

} // namespace cell::rt
