/**
 * @file
 * SPU-side programming environment (the SDK's spu-runtime surface).
 *
 * An SPE program is a coroutine `CoTask<void>(SpuEnv&)`. SpuEnv exposes
 * the Cell SDK idioms — mfc_get/mfc_put (+fence/barrier/list variants),
 * tag-status waits, mailbox and signal channels, the decrementer — on
 * the simulated SPU, charging realistic channel costs and attributing
 * stall time. Every call is bracketed by ApiHook events so PDT can
 * trace it exactly as the real instrumented runtime did.
 */

#ifndef CELL_RT_SPU_ENV_H
#define CELL_RT_SPU_ENV_H

#include <cstdint>
#include <string>

#include "rt/hooks.h"
#include "sim/machine.h"
#include "sim/spu.h"

namespace cell::rt {

using sim::CoTask;
using sim::EffAddr;
using sim::LsAddr;
using sim::TagId;
using sim::TagMask;

/**
 * The environment handed to a running SPE program.
 */
class SpuEnv
{
  public:
    /**
     * @param spu        the SPE this program runs on
     * @param hook       instrumentation hook (may be null = untraced)
     * @param argp       64-bit argument pointer (as spe_context_run)
     * @param envp       64-bit environment pointer
     * @param code_size  LS bytes occupied by "code"; data allocation
     *                   starts above it
     * @param ls_limit   first LS byte the program must NOT touch
     *                   (tracer buffers live above this)
     */
    SpuEnv(sim::Machine& machine, sim::Spu& spu, ApiHook* hook,
           std::uint64_t argp, std::uint64_t envp, std::uint32_t code_size,
           std::uint32_t ls_limit);

    SpuEnv(const SpuEnv&) = delete;
    SpuEnv& operator=(const SpuEnv&) = delete;

    /** @name Program arguments */
    ///@{
    std::uint64_t argp() const { return argp_; }
    std::uint64_t envp() const { return envp_; }
    ///@}

    /** The SPE index this program runs on. */
    std::uint32_t speIndex() const { return spu_.index(); }

    /** Direct local-store access (SPU loads/stores are free). */
    sim::LocalStore& ls() { return spu_.localStore(); }

    /**
     * Bump-allocate @p size bytes of LS for program data.
     * @throws std::bad_alloc if it would collide with the tracer region.
     */
    LsAddr lsAlloc(std::uint32_t size, std::uint32_t align = 16);

    /** Remaining allocatable LS bytes. */
    std::uint32_t lsFree() const { return ls_limit_ - ls_cursor_; }

    /** Charge @p cycles of computation. */
    CoTask<void> compute(sim::TickDelta cycles) { return spu_.compute(cycles); }

    /** @name MFC DMA (sizes up to 16 KiB, MFC alignment rules apply) */
    ///@{
    CoTask<void> mfcGet(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    CoTask<void> mfcGetf(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    CoTask<void> mfcGetb(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    CoTask<void> mfcPut(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    CoTask<void> mfcPutf(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    CoTask<void> mfcPutb(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    /** DMA list: @p list_ls points at n elements, @p ea supplies the
     *  high 32 EA bits, @p list_bytes = n * 8. */
    CoTask<void> mfcGetList(LsAddr ls, EffAddr ea, LsAddr list_ls,
                            std::uint32_t list_bytes, TagId tag);
    CoTask<void> mfcPutList(LsAddr ls, EffAddr ea, LsAddr list_ls,
                            std::uint32_t list_bytes, TagId tag);
    /** Acknowledge a stall-and-notify pause on @p tag. */
    CoTask<void> listStallAck(TagId tag);
    ///@}

    /** @name Large-transfer helpers (split into 16 KiB MFC commands) */
    ///@{
    CoTask<void> getLarge(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    CoTask<void> putLarge(LsAddr ls, EffAddr ea, std::uint32_t size, TagId tag);
    /** Fenced variant: every chunk is a GETF, so the whole transfer is
     *  ordered after earlier same-tag commands — required when the
     *  destination buffer is still being PUT from on the same tag. */
    CoTask<void> getLargef(LsAddr ls, EffAddr ea, std::uint32_t size,
                           TagId tag);
    ///@}

    /** @name Tag-group synchronization */
    ///@{
    CoTask<TagMask> waitTagAll(TagMask mask);
    CoTask<TagMask> waitTagAny(TagMask mask);
    TagMask tagStatusImmediate(TagMask mask)
    {
        return spu_.mfc().tagStatusImmediate(mask);
    }
    ///@}

    /** @name Mailboxes (blocking channel semantics) */
    ///@{
    CoTask<std::uint32_t> readInMbox();
    CoTask<void> writeOutMbox(std::uint32_t value);
    CoTask<void> writeOutIrqMbox(std::uint32_t value);
    std::size_t inMboxCount() const { return spu_.inbound().count(); }
    ///@}

    /** @name Signal notification (blocking reads, clear on read) */
    ///@{
    CoTask<std::uint32_t> readSignal1();
    CoTask<std::uint32_t> readSignal2();
    /**
     * sndsig: post @p bits to another SPE's signal register
     * (@p which is 1 or 2). SPE-to-SPE synchronization primitive.
     */
    CoTask<void> sendSignal(std::uint32_t target_spe, std::uint32_t which,
                            std::uint32_t bits);
    ///@}

    /** @name Decrementer */
    ///@{
    CoTask<std::uint32_t> readDecrementer();
    CoTask<void> writeDecrementer(std::uint32_t value);
    ///@}

    /** Record an application-defined trace event (PDT user events).
     *  Free (no frame, no suspension) when untraced. */
    HookAwait userEvent(std::uint32_t id, std::uint64_t payload = 0)
    {
        return emit(ApiOp::SpuUserEvent, ApiPhase::Begin, id, payload);
    }

    /** Set the exit code reported in the SPU_STOP event. */
    void setExitCode(std::uint32_t code) { exit_code_ = code; }
    std::uint32_t exitCode() const { return exit_code_; }

    sim::Spu& spu() { return spu_; }

    /**
     * Emit a hook event (used by the lifecycle wrapper too). Returns a
     * ready awaitable when untraced, so unhooked callouts allocate no
     * coroutine frame and cost nothing on the host.
     */
    HookAwait emit(ApiOp op, ApiPhase phase, std::uint64_t a = 0,
                   std::uint64_t b = 0, std::uint64_t c = 0,
                   std::uint64_t d = 0)
    {
        if (!hook_)
            return {};
        return HookAwait(emitSlow(op, phase, a, b, c, d));
    }

  private:
    CoTask<void> emitSlow(ApiOp op, ApiPhase phase, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c, std::uint64_t d);
    CoTask<void> dmaCommand(ApiOp op, sim::MfcOpcode mfc_op, bool fence,
                            bool barrier, LsAddr ls, EffAddr ea,
                            std::uint32_t size, TagId tag, LsAddr list_ls);
    /** Injected channel stall (mailbox/signal faults); call sites guard
     *  on faults().enabled() so the inert path allocates no frame. */
    CoTask<void> injectStall(sim::FaultSite site);

    sim::Machine& machine_;
    sim::Spu& spu_;
    ApiHook* hook_;
    std::uint64_t argp_;
    std::uint64_t envp_;
    std::uint32_t ls_cursor_;
    std::uint32_t ls_limit_;
    std::uint32_t exit_code_ = 0;
};

} // namespace cell::rt

#endif // CELL_RT_SPU_ENV_H
